package a

import "math/rand"

func bad() {
	_ = rand.Intn(10)    // want `global math/rand source via rand\.Intn`
	_ = rand.Int63()     // want `global math/rand source via rand\.Int63`
	_ = rand.Float64()   // want `global math/rand source via rand\.Float64`
	rand.Shuffle(3, nil) // want `global math/rand source via rand\.Shuffle`
	rand.Seed(42)        // want `global math/rand source via rand\.Seed`
}

func allowed() {
	// Seeded generators are the sanctioned pattern.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)
	_ = r.Float64()
	r.Shuffle(3, func(i, j int) {})
}

func suppressed() {
	_ = rand.Intn(10) //spfail:allow seededrand demo code only
}
