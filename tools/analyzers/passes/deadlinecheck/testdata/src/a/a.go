package a

import (
	"net"
	"time"
)

// fileLike closes like a file, not a connection: ignoring its Close error
// is legal.
type fileLike struct{}

func (fileLike) Close() error { return nil }

func deadlines(c net.Conn) {
	c.SetDeadline(time.Now().Add(time.Second))     // want `SetDeadline error discarded`
	c.SetReadDeadline(time.Now().Add(time.Second)) // want `SetReadDeadline error discarded`
	c.SetWriteDeadline(time.Now())                 // want `SetWriteDeadline error discarded`
	defer c.SetDeadline(time.Time{})               // want `SetDeadline error discarded`

	// Checked or explicitly discarded: legal.
	if err := c.SetDeadline(time.Now()); err != nil {
		_ = err
	}
	_ = c.SetReadDeadline(time.Now())
}

func closes(c net.Conn, l net.Listener, pc net.PacketConn, tc *net.TCPConn, f fileLike) {
	c.Close()  // want `Close error discarded on connection`
	l.Close()  // want `Close error discarded on connection`
	pc.Close() // want `Close error discarded on connection`
	tc.Close() // want `Close error discarded on connection`

	// Deferred cleanup and acknowledged discards: legal.
	defer c.Close()
	go l.Close()
	_ = pc.Close()

	f.Close()
}

func suppressed(c net.Conn) {
	c.Close() //spfail:allow deadlinecheck fire-and-forget teardown
}
