package a

import (
	"net"
	"time"
)

// Test files are exempt.
func helperForTests(c net.Conn) {
	c.Close()
	c.SetDeadline(time.Time{})
}
