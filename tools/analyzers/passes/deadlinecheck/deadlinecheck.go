// Package deadlinecheck flags discarded error returns from connection
// deadline setters and from non-deferred Close calls on net connections.
// The probing stack leans on deadlines for every politeness and greylist
// bound (paper §6.1); a SetDeadline that silently fails turns a bounded
// probe into an unbounded hang, and an unchecked Close on a write path can
// lose the final SMTP bytes. Deferred Closes are cleanup — their error is
// unactionable — and stay legal; explicitly assigning to _ acknowledges a
// deliberately ignored error.
package deadlinecheck

import (
	"go/ast"
	"go/types"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the deadlinecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "deadlinecheck",
	Doc: "SetDeadline/SetReadDeadline/SetWriteDeadline errors must be checked; " +
		"Close on net.Conn/Listener/PacketConn must be checked unless deferred",
	Run: run,
}

var deadlineSetters = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

func run(p *analysis.Pass) error {
	ifaces := netInterfaces(p.Pkg)
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					check(p, call, false, ifaces)
				}
			case *ast.DeferStmt:
				check(p, stmt.Call, true, ifaces)
			case *ast.GoStmt:
				check(p, stmt.Call, true, ifaces)
			}
			return true
		})
	}
	return nil
}

// check reports a discarded error on call when it is a deadline setter
// (always) or a non-deferred Close on a connection-like receiver.
func check(p *analysis.Pass, call *ast.CallExpr, deferred bool, ifaces []*types.Interface) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || !returnsOnlyError(sig) {
		return
	}
	switch {
	case deadlineSetters[fn.Name()]:
		p.Reportf(call.Pos(), "%s error discarded; a failed deadline makes the probe unbounded", fn.Name())
	case fn.Name() == "Close" && !deferred:
		if connLike(p.TypesInfo.TypeOf(sel.X), ifaces) {
			p.Reportf(call.Pos(), "Close error discarded on connection; check it or assign to _")
		}
	}
}

// returnsOnlyError matches `func(...) error`.
func returnsOnlyError(sig *types.Signature) bool {
	if sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// netInterfaces collects net.Conn, net.Listener, and net.PacketConn from
// the package's transitive imports. When the "net" package is unreachable
// the Close check is skipped (the deadline checks still run).
func netInterfaces(pkg *types.Package) []*types.Interface {
	netPkg := findImport(pkg, "net", make(map[*types.Package]bool))
	if netPkg == nil {
		return nil
	}
	var out []*types.Interface
	for _, name := range []string{"Conn", "Listener", "PacketConn"} {
		if obj := netPkg.Scope().Lookup(name); obj != nil {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				out = append(out, iface)
			}
		}
	}
	return out
}

func findImport(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if seen[pkg] {
		return nil
	}
	seen[pkg] = true
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// connLike reports whether t (or *t) satisfies one of the net interfaces.
func connLike(t types.Type, ifaces []*types.Interface) bool {
	if t == nil {
		return false
	}
	for _, iface := range ifaces {
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}
