package deadlinecheck_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/deadlinecheck"
)

func TestDeadlineCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "a", deadlinecheck.Analyzer)
}
