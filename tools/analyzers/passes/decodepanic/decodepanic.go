// Package decodepanic forbids panics reachable from the DNS wire-decode
// paths of internal/dnsmsg. Decode input is attacker-controlled — a remote
// mail server or resolver chooses every byte — and a reachable panic is a
// remotely triggerable crash, the exact failure class behind the libSPF2
// CVEs (CVE-2021-33912/33913) the paper discloses. Decode entry points must
// return errors; panics and Must* helpers are reserved for programmer
// errors on the encode/constant side.
package decodepanic

import (
	"go/ast"
	"go/types"
	"strings"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the decodepanic pass.
var Analyzer = &analysis.Analyzer{
	Name: "decodepanic",
	Doc: "no panic() or Must* call may be reachable from internal/dnsmsg " +
		"wire-decode entry points (Unpack, read*, decode*); wire input returns errors",
	Run: run,
}

func dnsmsgPackage(path string) bool {
	return path == "spfail/internal/dnsmsg" || strings.HasSuffix(path, "/dnsmsg") || path == "dnsmsg"
}

// decodeRoot reports whether a function name is a wire-decode entry point.
func decodeRoot(name string) bool {
	return name == "Unpack" ||
		strings.HasPrefix(name, "read") ||
		strings.HasPrefix(name, "decode") ||
		strings.HasPrefix(name, "unpack")
}

func run(p *analysis.Pass) error {
	if !dnsmsgPackage(p.PkgPath) {
		return nil
	}

	// Map every function/method object in the package to its declaration.
	decls := make(map[types.Object]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.TypesInfo.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
			if decodeRoot(fd.Name.Name) {
				roots = append(roots, fd)
			}
		}
	}

	// DFS the intra-package static call graph from each decode root,
	// reporting panic sites and Must* calls in every reachable function.
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl, root string)
	visit = func(fd *ast.FuncDecl, root string) {
		if visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(p, call)
			switch obj := callee.(type) {
			case *types.Builtin:
				if obj.Name() == "panic" {
					p.Reportf(call.Pos(), "panic reachable from wire-decode entry %s; decode paths must return errors", root)
				}
			case *types.Func:
				if strings.HasPrefix(obj.Name(), "Must") {
					p.Reportf(call.Pos(), "%s (panics on error) reachable from wire-decode entry %s; decode paths must return errors", obj.Name(), root)
					return true
				}
				if next, ok := decls[obj]; ok {
					visit(next, root)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		// Reset per root so a shared helper is attributed to every entry
		// point that reaches it? No — one report per site is enough, and
		// keeping visited across roots keeps the pass linear.
		visit(r, r.Name.Name)
	}
	return nil
}

// calleeObj resolves the static callee of a call expression, looking
// through plain identifiers and selector calls.
func calleeObj(p *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return p.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
