// Package other is outside internal/dnsmsg, so decodepanic ignores it even
// though readThing panics.
package other

func readThing(b []byte) byte {
	if len(b) == 0 {
		panic("empty")
	}
	return b[0]
}
