// Package dnsmsg is a fixture standing in for spfail/internal/dnsmsg: no
// panic or Must* helper may be reachable from wire-decode entry points.
package dnsmsg

import "errors"

var errShort = errors.New("short")

type Name struct{ s string }

func ParseName(s string) (Name, error) {
	if s == "" {
		return Name{}, errShort
	}
	return Name{s}, nil
}

// MustParseName panics on error: fine to define, illegal to reach from a
// decode path.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Unpack is a decode root: a direct panic is flagged.
func (n *Name) Unpack(b []byte) error {
	if len(b) == 0 {
		panic("empty input") // want `panic reachable from wire-decode entry Unpack`
	}
	n.s = string(b)
	return nil
}

// readHeader reaches a panic through a helper one hop away.
func readHeader(b []byte) error {
	return growCheck(b)
}

func growCheck(b []byte) error {
	if len(b) > 512 {
		panic("oversize") // want `panic reachable from wire-decode entry readHeader`
	}
	return nil
}

// decodeQuestion calls a Must helper: flagged at the call site.
func decodeQuestion(s string) Name {
	return MustParseName(s) // want `MustParseName \(panics on error\) reachable from wire-decode entry decodeQuestion`
}

// AppendName is encode-side: input is programmer-controlled, panics are
// legal here.
func AppendName(b []byte, n Name) []byte {
	if n.s == "" {
		panic("empty name")
	}
	return append(b, n.s...)
}

func decodeSuppressed(b []byte) error {
	if len(b) == 0 {
		panic("empty") //spfail:allow decodepanic fixture demonstrates suppression
	}
	return nil
}
