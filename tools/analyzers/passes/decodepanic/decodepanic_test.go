package decodepanic_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/decodepanic"
)

func TestDecodePanic(t *testing.T) {
	analysistest.Run(t, "testdata/src/dnsmsg", "dnsmsg", decodepanic.Analyzer)
}

func TestDecodePanicOtherPackagesIgnored(t *testing.T) {
	analysistest.Run(t, "testdata/src/other", "other", decodepanic.Analyzer)
}
