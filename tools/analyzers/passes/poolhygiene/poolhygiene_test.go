package poolhygiene_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/poolhygiene"
)

func TestPoolHygiene(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "a", poolhygiene.Analyzer)
}
