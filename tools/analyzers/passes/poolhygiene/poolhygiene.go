// Package poolhygiene enforces the sync.Pool recycling contract that keeps
// the zero-alloc probe pipeline byte-deterministic (PRs 4–6): a pooled
// object that re-enters circulation carrying state from its previous life
// corrupts later probes in ways no test reliably reproduces. The rules:
//
//  1. A pool whose element is a struct defined in the analyzed package must
//     give that struct a scrub method (Reset/reset/scrub/release/clear),
//     and the scrub method must assign every pointer-bearing field —
//     nilling it or re-slicing it — so recycled values cannot pin or leak
//     their previous generation's memory. Deliberately retained fields
//     (interning caches, freelists) take a field-level `//spfail:allow
//     poolhygiene <reason>`.
//  2. Every Put call site must be dominated by a scrub: a call to the
//     element's scrub method earlier in the same function, or the Put
//     lives inside the scrub method itself.
//  3. A Get result must be type-asserted immediately, and its first use
//     must be a reinitialization (scrub call, field write, lock) — not a
//     read or an escape, which would consume dirty state.
//
// The pass is intra-procedural and positional: it checks source order
// within one function, which matches how every release path in the
// repository is written. Boundary sites that scrub elsewhere (for example
// a Get handed to the caller with a documented "dirty until first use"
// contract) carry an explicit //spfail:allow with justification.
package poolhygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the poolhygiene pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolhygiene",
	Doc: "sync.Pool elements need a scrub method covering every pointer-bearing field; " +
		"Put must be dominated by a scrub and Get results must be reset before use",
	Run: run,
}

// scrubNames are the accepted reset-method spellings, mirroring the
// repository's conventions (bufio's Reset, the codec's reset, the SPF
// session's release).
var scrubNames = map[string]bool{
	"Reset": true, "reset": true,
	"Scrub": true, "scrub": true,
	"release": true, "Release": true,
	"clear": true, "Clear": true,
}

// poolInfo is one sync.Pool variable and what it stores.
type poolInfo struct {
	obj     types.Object // the pool variable
	declPos token.Pos
	elem    types.Type // element type (from New/Put/Get), nil if unknown
}

func run(p *analysis.Pass) error {
	pools := findPools(p)
	if len(pools) == 0 {
		return nil
	}

	// Map function declarations for enclosing-function lookups and scrub
	// body analysis.
	var funcs []*ast.FuncDecl
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
	}

	for _, pi := range pools {
		if pi.elem == nil {
			continue
		}
		scrub := scrubMethod(pi.elem)
		local := localStruct(p, pi.elem)
		if local != nil && scrub == nil {
			p.Reportf(pi.declPos, "pooled type %s has no reset/scrub method; recycled values keep their previous life's state",
				types.TypeString(pi.elem, types.RelativeTo(p.Pkg)))
			continue
		}
		if local != nil && scrub != nil {
			checkScrubCoverage(p, local, scrub, funcs)
		}
		if scrub != nil {
			checkPuts(p, pi, scrub, funcs)
		}
		checkGets(p, pi, scrub, funcs)
	}
	return nil
}

// findPools locates sync.Pool variables and infers their element types.
func findPools(p *analysis.Pass) []*poolInfo {
	byObj := make(map[types.Object]*poolInfo)
	var order []*poolInfo
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				obj := p.TypesInfo.Defs[name]
				if obj == nil || !isSyncPool(obj.Type()) {
					continue
				}
				pi := &poolInfo{obj: obj, declPos: name.Pos()}
				if i < len(vs.Values) {
					pi.elem = elemFromNew(p, vs.Values[i])
				}
				byObj[obj] = pi
				order = append(order, pi)
			}
			return true
		})
	}
	// Refine element types from Put arguments and Get assertions.
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pi := byObj[rootObject(p, sel.X)]
			if pi == nil || pi.elem != nil {
				return true
			}
			if sel.Sel.Name == "Put" && len(call.Args) == 1 {
				if t := p.TypesInfo.Types[call.Args[0]].Type; t != nil {
					pi.elem = t
				}
			}
			return true
		})
	}
	return order
}

func isSyncPool(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// elemFromNew extracts the element type from the New field of a sync.Pool
// composite literal, using the type checker's view of the return expression.
func elemFromNew(p *analysis.Pass, v ast.Expr) types.Type {
	cl, ok := ast.Unparen(v).(*ast.CompositeLit)
	if !ok {
		return nil
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "New" {
			continue
		}
		fl, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			return nil
		}
		var elem types.Type
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 || elem != nil {
				return true
			}
			if t := p.TypesInfo.Types[ret.Results[0]].Type; t != nil {
				elem = t
			}
			return true
		})
		return elem
	}
	return nil
}

// rootObject resolves an expression to the object of its root identifier
// (the pool variable for `decoderPool.Put`), or nil.
func rootObject(p *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		if obj, ok := p.TypesInfo.Uses[e.Sel]; ok {
			return obj
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rootObject(p, e.X)
		}
	}
	return nil
}

// scrubMethod finds the element type's reset method in its method set.
func scrubMethod(elem types.Type) *types.Func {
	ms := types.NewMethodSet(elem)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if ok && scrubNames[fn.Name()] {
			return fn
		}
	}
	return nil
}

// localStruct returns the named struct behind elem when it is declared in
// the analyzed package (directly or behind one pointer), else nil.
func localStruct(p *analysis.Pass, elem types.Type) *types.Named {
	t := elem
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != p.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// enclosingFunc returns the function declaration containing pos.
func enclosingFunc(funcs []*ast.FuncDecl, pos token.Pos) *ast.FuncDecl {
	for _, fd := range funcs {
		if fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// checkPuts enforces scrub-dominates-Put for every Put call on the pool.
func checkPuts(p *analysis.Pass, pi *poolInfo, scrub *types.Func, funcs []*ast.FuncDecl) {
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
				return true
			}
			if rootObject(p, sel.X) != pi.obj {
				return true
			}
			fd := enclosingFunc(funcs, call.Pos())
			if fd == nil {
				p.Reportf(call.Pos(), "%s.Put outside any function body", pi.obj.Name())
				return true
			}
			// The Put may live inside the scrub method itself (the
			// release-method pattern: scrub the fields, then Put).
			if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok && sameFunc(obj, scrub) {
				return true
			}
			if !scrubCallBefore(p, fd, scrub, call) {
				p.Reportf(call.Pos(), "%s.Put(%s) is not dominated by a %s call; the value re-enters the pool dirty",
					pi.obj.Name(), types.ExprString(call.Args[0]), scrub.Name())
			}
			return true
		})
	}
}

// sameFunc compares possibly-distinct method objects for the same method
// (method-set lookups can return a wrapper distinct from the Defs object).
func sameFunc(a, b *types.Func) bool {
	return a == b || (a.Name() == b.Name() && a.Pos() == b.Pos())
}

// scrubCallBefore reports whether fd contains a call to scrub at a position
// earlier than bound. When both the Put argument and a scrub receiver are
// plain identifiers they must resolve to the same variable.
func scrubCallBefore(p *analysis.Pass, fd *ast.FuncDecl, scrub *types.Func, put *ast.CallExpr) bool {
	var putVar types.Object
	if id, ok := ast.Unparen(put.Args[0]).(*ast.Ident); ok {
		putVar = p.TypesInfo.Uses[id]
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= put.Pos() || found {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !sameFunc(callee, scrub) {
			return true
		}
		if putVar != nil {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && p.TypesInfo.Uses[id] != putVar {
				return true // scrubbed a different value
			}
		}
		found = true
		return true
	})
	return found
}

// checkScrubCoverage verifies the scrub method assigns every
// pointer-bearing field of the pooled struct. Uncovered fields are
// reported at their declaration, so a deliberate retention takes a
// field-level allow comment.
func checkScrubCoverage(p *analysis.Pass, named *types.Named, scrub *types.Func, funcs []*ast.FuncDecl) {
	st := named.Underlying().(*types.Struct)
	scrubDecl := declOf(p, scrub, funcs)
	if scrubDecl == nil {
		return // scrub declared elsewhere (embedded); nothing to inspect
	}
	covered := make(map[string]bool)
	all := false
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if visited[fd] || fd.Recv == nil || len(fd.Recv.List[0].Names) == 0 {
			return
		}
		visited[fd] = true
		recv := p.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					switch lhs := ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr:
						if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && p.TypesInfo.Uses[id] == recv {
							covered[lhs.Sel.Name] = true
						}
					case *ast.StarExpr:
						if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok && p.TypesInfo.Uses[id] == recv {
							all = true // *recv = T{...} rewrites everything
						}
					}
				}
			case *ast.CallExpr:
				// Follow same-receiver helper methods (scrub split into
				// stages).
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || p.TypesInfo.Uses[id] != recv {
					return true
				}
				if callee, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
					if next := declOf(p, callee, funcs); next != nil {
						visit(next)
					}
				}
			}
			return true
		})
	}
	visit(scrubDecl)
	if all {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if covered[f.Name()] || !pointerBearing(f.Type(), 0) {
			continue
		}
		p.Reportf(fieldPos(p, named, f.Name()),
			"pointer-bearing field %s.%s is not assigned by %s; a recycled value pins its previous life's %s",
			named.Obj().Name(), f.Name(), scrub.Name(), f.Name())
	}
}

// declOf finds the FuncDecl for a method object within the package.
func declOf(p *analysis.Pass, fn *types.Func, funcs []*ast.FuncDecl) *ast.FuncDecl {
	for _, fd := range funcs {
		if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok && sameFunc(obj, fn) {
			return fd
		}
	}
	return nil
}

// fieldPos locates the declaration position of a struct field for
// reporting (falling back to the type's position).
func fieldPos(p *analysis.Pass, named *types.Named, field string) token.Pos {
	for _, f := range p.Files {
		var pos token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != named.Obj().Name() || pos != token.NoPos {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					if name.Name == field {
						pos = name.Pos()
					}
				}
			}
			return true
		})
		if pos != token.NoPos {
			return pos
		}
	}
	return named.Obj().Pos()
}

// pointerBearing reports whether a value of type t keeps heap memory alive:
// pointers, slices, maps, channels, funcs, interfaces, or aggregates
// containing one. Strings are excluded deliberately — they are immutable,
// and the repository's id-style string fields are rewritten on Get.
func pointerBearing(t types.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	switch t := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if pointerBearing(t.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return pointerBearing(t.Elem(), depth+1)
	}
	return false
}

// checkGets enforces assert-immediately and reset-before-read on Get
// results.
func checkGets(p *analysis.Pass, pi *poolInfo, scrub *types.Func, funcs []*ast.FuncDecl) {
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if ok {
				checkGetAssign(p, pi, scrub, funcs, assign)
				return true
			}
			// A Get outside an assignment: returned or passed along raw.
			call, ok := n.(*ast.CallExpr)
			if !ok || !isGetCall(p, pi, call) {
				return true
			}
			if !assertedImmediately(p, f, call) {
				p.Reportf(call.Pos(), "%s.Get() result must be type-asserted immediately", pi.obj.Name())
				return true
			}
			// Even asserted, the result may escape before any reset:
			// `return pool.Get().(*T)` or `use(pool.Get().(*T))`.
			path := nodePath(f, call.Pos())
			callIdx := -1
			for i, n := range path {
				if n == ast.Node(call) {
					callIdx = i
					break
				}
			}
			if callIdx < 0 {
				return true
			}
			for i := callIdx - 1; i >= 0; i-- {
				switch path[i].(type) {
				case *ast.TypeAssertExpr, *ast.ParenExpr:
					continue
				case *ast.ReturnStmt:
					p.Reportf(call.Pos(), "%s.Get() result escapes before reset: callers receive the previous life's state", pi.obj.Name())
				case *ast.CallExpr:
					p.Reportf(call.Pos(), "%s.Get() result passed along before reset", pi.obj.Name())
				}
				break
			}
			return true
		})
	}
}

// isGetCall reports whether call is pool.Get() on pi's pool.
func isGetCall(p *analysis.Pass, pi *poolInfo, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Get" && len(call.Args) == 0 && rootObject(p, sel.X) == pi.obj
}

// assertedImmediately reports whether the Get call's direct parent is a
// type assertion.
func assertedImmediately(p *analysis.Pass, f *ast.File, call *ast.CallExpr) bool {
	ok := false
	ast.Inspect(f, func(n ast.Node) bool {
		ta, isTA := n.(*ast.TypeAssertExpr)
		if isTA && ast.Unparen(ta.X) == call {
			ok = true
		}
		return true
	})
	return ok
}

// checkGetAssign handles `v := pool.Get().(*T)`: the result variable's
// first use must reinitialize it, not read it.
func checkGetAssign(p *analysis.Pass, pi *poolInfo, scrub *types.Func, funcs []*ast.FuncDecl, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
		return
	}
	ta, ok := ast.Unparen(assign.Rhs[0]).(*ast.TypeAssertExpr)
	if !ok {
		return
	}
	call, ok := ast.Unparen(ta.X).(*ast.CallExpr)
	if !ok || !isGetCall(p, pi, call) {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := p.TypesInfo.Defs[id]
	if obj == nil {
		obj = p.TypesInfo.Uses[id] // plain `=` assignment to existing var
	}
	if obj == nil {
		return
	}
	fd := enclosingFunc(funcs, assign.Pos())
	if fd == nil {
		return
	}
	if bad := firstDirtyUse(p, fd, obj, assign.End(), scrub); bad != nil {
		p.Reportf(bad.Pos(), "pooled %s read before reset: first use of %s after Get must scrub or reinitialize it",
			id.Name, id.Name)
	}
}

// firstDirtyUse finds the first use of obj after pos and returns it when
// that use consumes state instead of reinitializing. Accepted first uses:
// a scrub call, a field/element write, locking an embedded mutex, or
// handing the value back via Put.
func firstDirtyUse(p *analysis.Pass, fd *ast.FuncDecl, obj types.Object, pos token.Pos, scrub *types.Func) ast.Node {
	var first *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= pos || p.TypesInfo.Uses[id] != obj {
			return true
		}
		if first == nil || id.Pos() < first.Pos() {
			first = id
		}
		return true
	})
	if first == nil {
		return nil
	}
	if use := classifyUse(p, fd, first, scrub); use != nil {
		return use
	}
	return nil
}

// classifyUse returns the identifier when its use is dirty, nil when it is
// an accepted reinitializing use.
func classifyUse(p *analysis.Pass, fd *ast.FuncDecl, id *ast.Ident, scrub *types.Func) ast.Node {
	path := nodePath(fd.Body, id.Pos())
	// Walk outward from the identifier's parent (the last path element is
	// the identifier itself).
	for i := len(path) - 2; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.SelectorExpr:
			continue // part of id.field...; classified by the parent
		case *ast.StarExpr:
			continue // *id; classified by the parent
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if containsPos(lhs, id.Pos()) {
					return nil // write: id.f = ..., *id = ...
				}
			}
			return id // read on the RHS
		case *ast.IndexExpr:
			continue
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok && containsPos(sel.X, id.Pos()) {
				name := sel.Sel.Name
				if scrub != nil {
					if callee, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func); ok && sameFunc(callee, scrub) {
						return nil // scrubbed first: fine
					}
				}
				if name == "Lock" || name == "Unlock" || name == "RLock" || name == "RUnlock" || name == "Put" {
					return nil // locking for reinit, or straight back to the pool
				}
				return id // some other method consumes state
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
				return nil // pool.Put(id): covered by the Put checks
			}
			return id // passed as an argument: escapes dirty
		case *ast.ReturnStmt:
			return id // returned dirty
		case *ast.IncDecStmt:
			return nil // id.field++ is a write
		default:
			return nil // conservative: unhandled context, do not flag
		}
	}
	return nil
}

// nodePath returns the chain of nodes from root down to the node at pos.
func nodePath(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// containsPos reports whether pos falls inside n.
func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
