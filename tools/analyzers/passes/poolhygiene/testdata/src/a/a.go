// Package a exercises the poolhygiene pass.
package a

import "sync"

// session has a proper scrub method and clean call sites.
type session struct {
	buf   []byte
	next  *session
	count int
}

func (s *session) reset() {
	s.buf = s.buf[:0]
	s.next = nil
	s.count = 0
}

var sessionPool = sync.Pool{New: func() any { return new(session) }}

func goodRoundTrip() {
	s := sessionPool.Get().(*session)
	s.count = 1 // first use is a write: fine
	s.reset()
	sessionPool.Put(s)
}

func goodReleaseStyle(s *session) {
	s.reset()
	sessionPool.Put(s)
}

// dirty has no scrub method at all.
type dirty struct {
	p *int
}

var dirtyPool = sync.Pool{New: func() any { return new(dirty) }} // want `pooled type \*dirty has no reset/scrub method`

// leaky's scrub forgets its pointer-bearing fields.
type leaky struct {
	buf []byte
	ptr *int // want `pointer-bearing field leaky\.ptr is not assigned by reset`
	//spfail:allow poolhygiene interning cache deliberately survives recycling
	kept map[string]int
	n    int
}

func (l *leaky) reset() {
	l.buf = nil
	l.n = 0
}

var leakyPool = sync.Pool{New: func() any { return new(leaky) }}

func releaseLeaky(l *leaky) {
	l.reset()
	leakyPool.Put(l)
}

// wholesale resets by assigning the zero value; every field counts as
// covered.
type wholesale struct {
	p  *int
	fn func()
}

func (w *wholesale) release() {
	*w = wholesale{}
	wholesalePool.Put(w)
}

var wholesalePool = sync.Pool{New: func() any { return new(wholesale) }}

func badPut(s *session) {
	sessionPool.Put(s) // want `sessionPool\.Put\(s\) is not dominated by a reset call`
}

func allowedPut(s *session) {
	//spfail:allow poolhygiene scrubbed by the caller before every handoff
	sessionPool.Put(s)
}

func badGetEscapes() *session {
	return sessionPool.Get().(*session) // want `result escapes before reset`
}

func badGetRead() int {
	s := sessionPool.Get().(*session)
	n := s.count // want `pooled s read before reset`
	s.reset()
	sessionPool.Put(s)
	return n
}

func badGetRaw() {
	v := sessionPool.Get() // want `result must be type-asserted immediately`
	_ = v
}

// bufPool stores a plain *[]byte: no fields, no scrub obligations.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 1024)
	return &b
}}

func rawBuffer() {
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	(*bp)[0] = 1
}
