package lockguard_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/lockguard"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata/src/b", "b", lockguard.Analyzer)
}
