// Package lockguard checks `// guarded by <mu>` field annotations: a
// struct field so annotated may only be read while its mutex is held
// (RLock or Lock) and only be written under the exclusive Lock. PR 6
// shipped exactly the bug this pass exists for — a pooled trace buffer's
// clock was read outside the buffer lock, racing the recycler that
// rewrites it — and the data-race window was small enough that only a
// purpose-built stress test caught it.
//
// The check is positional and intra-procedural: within the enclosing
// function, the last Lock/RLock/Unlock/RUnlock on the guarding mutex
// before the access decides the held state. Unlocks inside defer
// statements run at return and are ignored. Two spellings of "holding the
// mutex" are recognized:
//
//   - exact: the access base plus the guard path (`b.spans` guarded by
//     `mu` needs `b.mu.Lock()`; `sp.attrs` guarded by `b.mu` needs
//     `sp.b.mu.Lock()`);
//   - alias: when the guard path starts with a sibling pointer field
//     (`b.mu` on a Span field), a lock through a plain variable of that
//     field's type (`b.mu.Lock()` where b is the owning *Buffer) counts —
//     the common pattern when the owner carves values out of its own
//     arenas.
//
// A function whose doc comment carries `//spfail:locked <expr>` asserts
// the caller holds that mutex on entry (the "Must hold b.mu" helper
// convention). Protocol-based exclusion that no lock expresses — a closed
// flag checked under the lock before a lock-free read elsewhere — takes a
// site-level //spfail:allow with justification.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` may only be read holding that mutex " +
		"(RLock suffices) and written holding the exclusive Lock",
	Run: run,
}

// lockedDirective marks a function whose caller guarantees a mutex.
const lockedDirective = "//spfail:locked"

// guardSpec is one annotated field.
type guardSpec struct {
	structType *types.Named
	field      string
	guard      string // dotted path relative to the struct value, e.g. "mu" or "b.mu"
}

func run(p *analysis.Pass) error {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return nil
	}
	index := make(map[types.Object]*guardSpec) // field object -> spec
	byType := make(map[*types.Named][]*guardSpec)
	for i := range guards {
		g := &guards[i]
		byType[g.structType] = append(byType[g.structType], g)
		st := g.structType.Underlying().(*types.Struct)
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == g.field {
				index[st.Field(j)] = g
			}
		}
	}

	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(p, fd, index, byType)
		}
	}
	return nil
}

// collectGuards parses `guarded by <path>` comments on struct fields.
func collectGuards(p *analysis.Pass) []guardSpec {
	var out []guardSpec
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				guard := guardFromComments(fl.Doc, fl.Comment)
				if guard == "" {
					continue
				}
				for _, name := range fl.Names {
					out = append(out, guardSpec{structType: named, field: name.Name, guard: guard})
				}
			}
			return true
		})
	}
	return out
}

// guardFromComments extracts the mutex path from a field's doc or line
// comment containing "guarded by <path>".
func guardFromComments(groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, "guarded by ")
			if i < 0 {
				continue
			}
			rest := strings.TrimSpace(text[i+len("guarded by "):])
			if j := strings.IndexAny(rest, " \t.;,()"); j >= 0 {
				// Allow a trailing sentence; the path itself may contain
				// dots, so only cut at a dot followed by space or at
				// whitespace.
				if rest[j] != '.' {
					rest = rest[:j]
				} else {
					// Cut "mu." at end of sentence but keep "b.mu".
					for k := 0; k < len(rest); k++ {
						if rest[k] == ' ' || rest[k] == '\t' {
							rest = rest[:k]
							break
						}
					}
					rest = strings.TrimRight(rest, ".,;")
				}
			}
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}

// lockEvent is one Lock/RLock/Unlock/RUnlock call on a rendered mutex
// expression.
type lockEvent struct {
	pos      token.Pos
	expr     ast.Expr // the mutex expression (receiver of the call)
	op       string   // Lock, RLock, Unlock, RUnlock
	deferred bool
	// scopeEnd, when nonzero, marks the end of an enclosing block that
	// terminates (return/branch/panic): every path through this event
	// leaves the block, so the event does not flow to positions past it.
	// This is what keeps the ubiquitous `if closed { mu.Unlock(); return }`
	// early-out from poisoning the straight-line locked path below it.
	scopeEnd token.Pos
}

// access is one read or write of a guarded field.
type access struct {
	pos   token.Pos
	base  ast.Expr // expression the field is selected from
	spec  *guardSpec
	write bool
}

func checkFunc(p *analysis.Pass, fd *ast.FuncDecl, index map[types.Object]*guardSpec, byType map[*types.Named][]*guardSpec) {
	held := directiveLocks(fd)
	var events []lockEvent
	var accesses []access

	// Scope: one positional scan over the whole body including nested
	// literals. Lock state flows into closures, which matches the
	// dominant "closure runs synchronously under the lock" use;
	// asynchronous closures that need their own discipline re-lock
	// inside and are therefore still checked sensibly.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if ev, ok := lockCall(n.Call); ok {
				ev.deferred = true
				events = append(events, ev)
				return false
			}
			return true
		case *ast.CallExpr:
			if ev, ok := lockCall(n); ok {
				events = append(events, ev)
			}
			return true
		case *ast.SelectorExpr:
			obj := fieldObj(p, n)
			if spec, ok := index[obj]; ok {
				accesses = append(accesses, access{pos: n.Pos(), base: n.X, spec: spec, write: isWrite(fd, n)})
			}
			return true
		case *ast.AssignStmt:
			// Whole-struct writes through a pointer: *sp = Span{...}
			for _, lhs := range n.Lhs {
				se, ok := ast.Unparen(lhs).(*ast.StarExpr)
				if !ok {
					continue
				}
				t := p.TypesInfo.Types[se.X].Type
				ptr, ok := t.(*types.Pointer)
				if !ok {
					continue
				}
				if named, ok := ptr.Elem().(*types.Named); ok {
					// A wholesale write clobbers every guarded field;
					// one diagnostic (for the first spec) is enough.
					if specs := byType[named]; len(specs) > 0 {
						accesses = append(accesses, access{pos: se.Pos(), base: se.X, spec: specs[0], write: true})
					}
				}
			}
			return true
		}
		return true
	})

	for i := range events {
		if events[i].op == "Unlock" || events[i].op == "RUnlock" {
			events[i].scopeEnd = terminatingBlockEnd(fd.Body, events[i].pos)
		}
	}

	for _, a := range accesses {
		state := heldState(p, a, events, held)
		switch {
		case state == "" && a.write:
			p.Reportf(a.pos, "write to %s.%s (guarded by %s) without holding %s",
				types.ExprString(a.base), a.spec.field, a.spec.guard, requiredMutex(a))
		case state == "":
			p.Reportf(a.pos, "read of %s.%s (guarded by %s) without holding %s",
				types.ExprString(a.base), a.spec.field, a.spec.guard, requiredMutex(a))
		case state == "RLock" && a.write:
			p.Reportf(a.pos, "write to %s.%s (guarded by %s) under RLock; writes need the exclusive Lock",
				types.ExprString(a.base), a.spec.field, a.spec.guard)
		}
	}
}

// requiredMutex renders the mutex an access needs, for diagnostics.
func requiredMutex(a access) string {
	return types.ExprString(a.base) + "." + a.spec.guard
}

// directiveLocks parses //spfail:locked directives from the function doc.
func directiveLocks(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, lockedDirective) {
			for _, f := range strings.Fields(strings.TrimPrefix(c.Text, lockedDirective)) {
				out = append(out, f)
			}
		}
	}
	return out
}

// lockCall classifies a call as a mutex operation.
func lockCall(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return lockEvent{pos: call.Pos(), expr: sel.X, op: sel.Sel.Name}, true
	}
	return lockEvent{}, false
}

// fieldObj resolves a selector to the struct field object it denotes.
func fieldObj(p *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := p.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// isWrite reports whether the selector at pos is an assignment target or
// inc/dec operand.
func isWrite(fd *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	write := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				lhs = ast.Unparen(lhs)
				if lhs == ast.Expr(sel) {
					write = true
				}
				// m[k] = v and *p = v mutate the guarded container.
				switch l := lhs.(type) {
				case *ast.IndexExpr:
					if ast.Unparen(l.X) == ast.Expr(sel) {
						write = true
					}
				case *ast.StarExpr:
					if ast.Unparen(l.X) == ast.Expr(sel) {
						write = true
					}
				}
			}
		case *ast.IncDecStmt:
			if ast.Unparen(n.X) == ast.Expr(sel) {
				write = true
			}
		case *ast.UnaryExpr:
			// &x.f may be written through; treat as a write.
			if n.Op == token.AND && ast.Unparen(n.X) == ast.Expr(sel) {
				write = true
			}
		}
		return true
	})
	return write
}

// heldState computes the lock state at the access: "", "RLock", or "Lock".
func heldState(p *analysis.Pass, a access, events []lockEvent, directives []string) string {
	exact := types.ExprString(ast.Unparen(a.base)) + "." + a.spec.guard
	for _, d := range directives {
		if d == exact || d == a.spec.guard {
			return "Lock" // caller-holds directives assert exclusive hold
		}
	}
	state := ""
	for _, ev := range events {
		if ev.pos >= a.pos || ev.deferred {
			continue
		}
		if ev.scopeEnd != 0 && a.pos >= ev.scopeEnd {
			continue // every path through ev exits its block before a
		}
		if !mutexMatches(p, ev.expr, exact, a) {
			continue
		}
		switch ev.op {
		case "Lock":
			state = "Lock"
		case "RLock":
			state = "RLock"
		case "Unlock", "RUnlock":
			state = ""
		}
	}
	return state
}

// mutexMatches reports whether the locked expression is the access's
// guarding mutex: exact textual match, or the alias form where the guard
// path routes through a pointer field and the lock goes through a variable
// of that field's type.
func mutexMatches(p *analysis.Pass, lockExpr ast.Expr, exact string, a access) bool {
	rendered := types.ExprString(ast.Unparen(lockExpr))
	if rendered == exact {
		return true
	}
	head, _, hasDot := strings.Cut(a.spec.guard, ".")
	if !hasDot || rendered != a.spec.guard {
		return false
	}
	// guard "b.mu": accept `b.mu.Lock()` when b's type matches the
	// struct's field b.
	st := a.spec.structType.Underlying().(*types.Struct)
	var fieldType types.Type
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == head {
			fieldType = st.Field(i).Type()
		}
	}
	if fieldType == nil {
		return false
	}
	rootIdent := rootOf(lockExpr)
	if rootIdent == nil {
		return false
	}
	obj := p.TypesInfo.Uses[rootIdent]
	return obj != nil && types.Identical(obj.Type(), fieldType)
}

// terminatingBlockEnd returns the End of the innermost block enclosing
// pos when that block's last statement unconditionally leaves it
// (return, break/continue/goto, or panic), and 0 otherwise. The
// function's own body does not count: leaving it is just falling off
// the end.
func terminatingBlockEnd(body *ast.BlockStmt, pos token.Pos) token.Pos {
	var innermost *ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			innermost = b
		}
		return true
	})
	if innermost == nil || innermost == body || len(innermost.List) == 0 {
		return 0
	}
	if terminates(innermost.List[len(innermost.List)-1]) {
		return innermost.End()
	}
	return 0
}

// terminates reports whether executing s always leaves the enclosing
// block (a conservative subset of the spec's terminating statements).
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return len(s.List) > 0 && terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if len(cc.Body) == 0 || !terminates(cc.Body[len(cc.Body)-1]) {
				return false
			}
		}
		return len(s.Body.List) > 0
	}
	return false
}

// rootOf returns the leftmost identifier of a selector chain.
func rootOf(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
