// Package b exercises the lockguard pass.
package b

import "sync"

// counter is the plain-mutex shape.
type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) goodInc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) badRead() int {
	return c.n // want `read of c\.n \(guarded by mu\) without holding c\.mu`
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `write to c\.n \(guarded by mu\) without holding c\.mu`
}

func (c *counter) goodEarlyReturn(cond bool) int {
	c.mu.Lock()
	if cond {
		c.mu.Unlock() // exits via return: must not poison the path below
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func (c *counter) goodSelectEarly(ch chan int) int {
	c.mu.Lock()
	if c.n == 0 {
		c.mu.Unlock()
		select { // every case returns, so this unlock exits the function
		case v := <-ch:
			return v
		default:
			return 0
		}
	}
	n := c.n
	c.mu.Unlock()
	return n
}

//spfail:locked c.mu
func (c *counter) callerHolds() {
	c.n++
}

func (c *counter) allowedRead() int {
	//spfail:allow lockguard snapshot read is racy by design, used for logging only
	return c.n
}

// store is the RWMutex shape: reads need RLock, writes need Lock.
type store struct {
	mu   sync.RWMutex
	data map[string]int // guarded by mu
}

func (s *store) goodGet(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data[k]
}

func (s *store) badWriteUnderRLock(k string) {
	s.mu.RLock()
	s.data[k] = 1 // want `write to s\.data \(guarded by mu\) under RLock; writes need the exclusive Lock`
	s.mu.RUnlock()
}

// owner/span is the alias shape from internal/trace: span fields are
// guarded by the owning buffer's mutex, and methods on the owner lock
// their own mu before touching spans carved from the arena.
type owner struct {
	mu    sync.Mutex
	spans []span // guarded by mu
}

type span struct {
	b    *owner
	end  int64 // guarded by b.mu
	done bool  // guarded by b.mu
}

func (sp *span) goodEnd(v int64) {
	sp.b.mu.Lock()
	sp.end = v
	sp.b.mu.Unlock()
}

func (sp *span) badEnd(v int64) {
	sp.end = v // want `write to sp\.end \(guarded by b\.mu\) without holding sp\.b\.mu`
}

func (b *owner) aliasWrite() {
	b.mu.Lock()
	defer b.mu.Unlock()
	sp := &b.spans[0]
	*sp = span{b: b} // whole-struct write: covered by the alias lock
	sp.end = 1       // alias: b.mu held, b's type matches span.b
	sp.done = true
}

//spfail:locked b.mu
func (b *owner) allocSpan() *span {
	b.spans = append(b.spans, span{b: b})
	sp := &b.spans[len(b.spans)-1]
	sp.done = false
	return sp
}

func (b *owner) badWholesale(sp *span) {
	*sp = span{} // want `write to sp\.end \(guarded by b\.mu\) without holding sp\.b\.mu`
}
