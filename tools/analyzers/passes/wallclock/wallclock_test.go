package wallclock_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", "a", wallclock.Analyzer)
}

func TestWallclockClockPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/internal/clock", "spfail/internal/clock", wallclock.Analyzer)
}
