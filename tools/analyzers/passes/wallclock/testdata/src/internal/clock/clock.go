// Package clock is the one package allowed to read the wall clock: the
// pass exempts any package path ending in internal/clock.
package clock

import "time"

func Now() time.Time { return time.Now() }

func Sleep(d time.Duration) { time.Sleep(d) }
