package a

import "time"

// Test files are exempt: the wall clock is fine in tests.
func helperForTests() {
	_ = time.Now()
	<-time.After(time.Millisecond)
	time.Sleep(0)
}
