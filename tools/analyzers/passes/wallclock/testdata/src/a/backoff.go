package a

import (
	"context"
	"time"
)

// retryLoop is shaped like the probing stack's backoff code: the tempting
// bug is bounding each attempt with a context deadline, which runs on the
// wall clock while the campaign sleeps on the virtual one.
func retryLoop(ctx context.Context, attempt func(context.Context) error) error {
	var err error
	for i := 0; i < 3; i++ {
		actx, cancel := context.WithTimeout(ctx, time.Second) // want `context\.WithTimeout arms a wall-clock timer`
		err = attempt(actx)
		cancel()
		if err == nil {
			return nil
		}
	}
	return err
}

func deadlineVariant(ctx context.Context, t time.Time) (context.Context, context.CancelFunc) {
	return context.WithDeadline(ctx, t) // want `context\.WithDeadline arms a wall-clock timer`
}

func contextAllowed(ctx context.Context) {
	// Cancellation without a timer is fine.
	c, cancel := context.WithCancel(ctx)
	cancel()
	_ = c
}

func contextSuppressed(ctx context.Context) {
	//spfail:allow wallclock boundary with a real-time API
	_, cancel := context.WithTimeout(ctx, time.Second)
	cancel()
}
