package a

import "time"

func bad() {
	_ = time.Now()              // want `direct wall-clock call time\.Now`
	time.Sleep(time.Second)     // want `direct wall-clock call time\.Sleep`
	<-time.After(time.Second)   // want `direct wall-clock call time\.After`
	_ = time.NewTimer(0)        // want `direct wall-clock call time\.NewTimer`
	_ = time.NewTicker(1)       // want `direct wall-clock call time\.NewTicker`
	_ = time.Since(time.Time{}) // want `direct wall-clock call time\.Since`
}

// funcValue passes time.Now as a value — still a wall-clock dependency.
func funcValue() func() time.Time {
	return time.Now // want `direct wall-clock call time\.Now`
}

func allowed() {
	// Pure time construction and methods are fine.
	t := time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC)
	_ = t.Add(time.Hour)
	d, _ := time.ParseDuration("5s")
	_ = d
	tm := new(time.Timer)
	tm.Stop()
}

func suppressedSameLine() {
	_ = time.Now() //spfail:allow wallclock boundary with the real clock
}

func suppressedLineAbove() {
	//spfail:allow wallclock boundary with the real clock
	_ = time.Now()
}
