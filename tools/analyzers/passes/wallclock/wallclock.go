// Package wallclock forbids direct wall-clock access outside the clock
// package. The longitudinal study (paper §5, §7.6) is reproducible offline
// only because every sleep, cadence, and timestamp flows through
// clock.Clock; a stray time.Now() silently re-couples a campaign to real
// time and breaks bit-for-bit replay. Test files are exempt.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"spfail/tools/analyzers/analysis"
)

// banned is the set of package-level time functions that read or schedule
// against the wall clock. Methods (Timer.Stop, Time.Add, ...) and pure
// constructors (time.Date, time.Parse) are fine.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// bannedContext is the set of context constructors that arm a wall-clock
// timer under the hood. Retry backoff and breaker cooldowns must bound
// their waits with retry.Policy deadlines on the injected clock instead —
// a context deadline would cancel probes on the real timeline while the
// campaign sleeps on the virtual one.
var bannedContext = map[string]bool{
	"WithTimeout":       true,
	"WithDeadline":      true,
	"WithTimeoutCause":  true,
	"WithDeadlineCause": true,
}

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Sleep/After/NewTimer/... and context.WithTimeout/WithDeadline outside internal/clock; " +
		"inject clock.Clock so campaigns replay deterministically",
	Run: run,
}

// exemptPackage reports whether path is the clock abstraction itself —
// the one place allowed to touch the real clock.
func exemptPackage(path string) bool {
	return path == "spfail/internal/clock" || strings.HasSuffix(path, "internal/clock")
}

func run(p *analysis.Pass) error {
	if exemptPackage(p.PkgPath) {
		return nil
	}
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // method on Timer/Ticker/Time, not a clock read
			}
			switch fn.Pkg().Path() {
			case "time":
				if banned[fn.Name()] {
					p.Reportf(sel.Pos(), "direct wall-clock call time.%s; inject clock.Clock (see docs/static-analysis.md)", fn.Name())
				}
			case "context":
				if bannedContext[fn.Name()] {
					p.Reportf(sel.Pos(), "context.%s arms a wall-clock timer; bound waits with retry.Policy on the injected clock (see docs/static-analysis.md)", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
