// Package c exercises the hotpathalloc pass.
package c

import "fmt"

var table = map[string]int{"a": 1}

// coldPath is unmarked: every construct below is fine here.
func coldPath(b []byte) string {
	f := func() []int { return []int{1} }
	_ = f()
	_ = fmt.Sprintf("%x", b)
	return string(b)
}

// hotClean stays within the rules.
//
//spfail:hotpath
func hotClean(b []byte, dst []byte) int {
	n := copy(dst, b)
	if v, ok := table[string(b)]; ok { // map-read key: compiler no-alloc form
		n += v
	}
	return n
}

//spfail:hotpath
func hotConv(b []byte) string {
	return string(b) // want `hot path string\(\[\]byte\) conversion allocates`
}

//spfail:hotpath
func hotConvBack(s string) []byte {
	return []byte(s) // want `hot path \[\]byte\(string\) conversion allocates`
}

//spfail:hotpath
func hotMapWrite(m map[string]int, b []byte) {
	m[string(b)] = 1 // want `hot path string\(\[\]byte\) conversion allocates`
}

//spfail:hotpath
func hotLits() int {
	m := map[string]int{} // want `hot path map literal allocates`
	s := []int{1, 2}      // want `hot path slice literal allocates`
	return len(m) + len(s)
}

//spfail:hotpath
func hotFmt(err error) error {
	return fmt.Errorf("wrap: %w", err) // want `hot path calls fmt\.Errorf; fmt boxes its operands`
}

//spfail:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want `hot path closure captures n; captured variables escape to the heap`
}

// hotStaticClosure's literal captures nothing: compiles to a static func.
//
//spfail:hotpath
func hotStaticClosure() func() int {
	return func() int { return 42 }
}

//spfail:hotpath
func hotAllowed(err error) error {
	if err != nil {
		//spfail:allow hotpathalloc cold error path, probe already failed
		return fmt.Errorf("probe: %w", err)
	}
	return nil
}
