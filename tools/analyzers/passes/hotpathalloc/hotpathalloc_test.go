package hotpathalloc_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/c", "c", hotpathalloc.Analyzer)
}
