// Package hotpathalloc keeps functions on the measurement fast path free
// of incidental heap allocation. The probe pipeline is zero-alloc by
// construction (PRs 4-6): pooled sessions, arena-backed trace spans,
// preallocated DNS codecs. That regime is easy to break with one
// innocent-looking line — a fmt.Errorf on a path that turns out to be
// warm, a closure that captures a loop variable, a string([]byte) round
// trip — and the regression only shows up later as benchmark drift.
//
// A function whose doc comment carries the `//spfail:hotpath` directive
// is checked for the construct classes that reliably heap-allocate:
//
//   - function literals that capture enclosing variables (captured
//     variables move to the heap; capture-free literals compile to
//     static funcs and are fine);
//   - string <-> []byte conversions, except the `m[string(b)]` map-read
//     form the compiler optimizes to a no-alloc lookup;
//   - map and slice composite literals;
//   - any call into package fmt (all fmt entry points take ...any and
//     box their operands).
//
// The directive is deliberately per-function, not per-package: cold
// error paths inside a hot function take a site-level //spfail:allow
// with a justification, which doubles as documentation of where the
// slow path starts.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "functions marked //spfail:hotpath may not contain heap-escaping constructs: " +
		"capturing closures, string/[]byte conversions, map/slice literals, fmt calls",
	Run: run,
}

// directive marks a function as hot-path.
const directive = "//spfail:hotpath"

func run(p *analysis.Pass) error {
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkBody(p, fd)
		}
	}
	return nil
}

func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

func checkBody(p *analysis.Pass, fd *ast.FuncDecl) {
	exemptConv := mapReadKeys(p, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if name := capturedVar(p, fd, n); name != "" {
				p.Reportf(n.Pos(), "hot path closure captures %s; captured variables escape to the heap", name)
			}
			return true
		case *ast.CallExpr:
			if exemptConv[n] {
				return true
			}
			if kind := stringByteConv(p, n); kind != "" {
				p.Reportf(n.Pos(), "hot path %s conversion allocates", kind)
				return true
			}
			if name, ok := fmtCall(p, n); ok {
				p.Reportf(n.Pos(), "hot path calls fmt.%s; fmt boxes its operands", name)
			}
			return true
		case *ast.CompositeLit:
			t := p.TypesInfo.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "hot path map literal allocates")
			case *types.Slice:
				p.Reportf(n.Pos(), "hot path slice literal allocates")
			}
			return true
		}
		return true
	})
}

// mapReadKeys collects string(b) conversions used as map-read keys,
// which the compiler compiles without allocating the string.
func mapReadKeys(p *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	assignLHS := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				assignLHS[ast.Unparen(lhs)] = true
			}
		}
		return true
	})
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok || assignLHS[ix] {
			return true
		}
		t := p.TypesInfo.Types[ix.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if call, ok := ast.Unparen(ix.Index).(*ast.CallExpr); ok && stringByteConv(p, call) == "string([]byte)" {
			out[call] = true
		}
		return true
	})
	return out
}

// stringByteConv reports whether call is a string<->[]byte conversion,
// returning "string([]byte)", "[]byte(string)", or "".
func stringByteConv(p *analysis.Pass, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	argT := p.TypesInfo.Types[call.Args[0]].Type
	if argT == nil {
		return ""
	}
	if isString(tv.Type) && isByteSlice(argT) {
		return "string([]byte)"
	}
	if isByteSlice(tv.Type) && isString(argT) {
		return "[]byte(string)"
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// fmtCall reports whether call invokes a function from package fmt.
func fmtCall(p *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return "", false
	}
	return sel.Sel.Name, true
}

// capturedVar returns the name of a variable the literal captures from
// its enclosing function, or "" if it is capture-free.
func capturedVar(p *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside this literal. Package-level vars are not captures.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}
