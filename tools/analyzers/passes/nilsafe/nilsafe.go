// Package nilsafe enforces the telemetry contract from PR 1: every exported
// method on a pointer type in internal/telemetry must check its receiver
// against nil before using it, so an unwired component (nil *Registry, nil
// *Counter) pays one predictable branch instead of crashing the prober on
// the hot path.
package nilsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spfail/tools/analyzers/analysis"
)

// Analyzer is the nilsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "nilsafe",
	Doc: "exported methods on internal/telemetry pointer types must guard the " +
		"receiver against nil before first use (zero-cost-when-off contract)",
	Run: run,
}

func telemetryPackage(path string) bool {
	return path == "spfail/internal/telemetry" || strings.HasSuffix(path, "/telemetry") || path == "telemetry"
}

func run(p *analysis.Pass) error {
	if !telemetryPackage(p.PkgPath) {
		return nil
	}
	for _, f := range p.Files {
		if analysis.IsTestFile(p.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); !ok {
				continue // value receiver: nil is impossible
			}
			if len(fd.Recv.List[0].Names) == 0 || fd.Recv.List[0].Names[0].Name == "_" {
				continue // receiver unnamed, hence unused
			}
			recvObj := p.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recvObj == nil {
				continue
			}
			checkMethod(p, fd, recvObj)
		}
	}
	return nil
}

// checkMethod verifies that the receiver's first use (in source order) is a
// comparison against nil. Any other first use — field access, method call,
// passing it along — can dereference a nil receiver.
func checkMethod(p *analysis.Pass, fd *ast.FuncDecl, recv types.Object) {
	first := token.Pos(0)
	firstIsGuard := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || p.TypesInfo.Uses[id] != recv {
			return true
		}
		if first == 0 || id.Pos() < first {
			first = id.Pos()
			firstIsGuard = false // reset; recomputed below for this use
		}
		return true
	})
	if first == 0 {
		return // receiver never used
	}
	// Is the first use inside a `recv == nil` / `recv != nil` comparison?
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if coversGuard(p, be, recv, first) {
			firstIsGuard = true
		}
		return true
	})
	if !firstIsGuard {
		p.Reportf(fd.Name.Pos(), "exported method %s on pointer receiver uses the receiver before a nil guard; start with `if %s == nil`",
			fd.Name.Name, recv.Name())
	}
}

// coversGuard reports whether be is a nil comparison whose receiver operand
// sits exactly at pos.
func coversGuard(p *analysis.Pass, be *ast.BinaryExpr, recv types.Object, pos token.Pos) bool {
	isRecvAt := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Pos() == pos && p.TypesInfo.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilObj := p.TypesInfo.Uses[id].(*types.Nil)
		return isNilObj
	}
	return (isRecvAt(be.X) && isNil(be.Y)) || (isRecvAt(be.Y) && isNil(be.X))
}
