// Package other is outside internal/telemetry, so nilsafe ignores it even
// though Inc would be flagged there.
package other

type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	c.n++
}
