// Package telemetry is a fixture standing in for spfail/internal/telemetry:
// exported pointer-receiver methods must guard the receiver against nil
// before first use.
package telemetry

type Counter struct {
	n int64
}

// Add guards first: legal.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Value guards with != nil: legal.
func (c *Counter) Value() int64 {
	if c != nil {
		return c.n
	}
	return 0
}

// Inc uses the receiver before any guard.
func (c *Counter) Inc() { // want `exported method Inc on pointer receiver uses the receiver before a nil guard`
	c.n++
}

// LateGuard dereferences first, then guards — too late.
func (c *Counter) LateGuard() int64 { // want `exported method LateGuard on pointer receiver uses the receiver before a nil guard`
	v := c.n
	if c == nil {
		return 0
	}
	return v
}

type Registry struct {
	counters map[string]*Counter
}

// Snapshot mirrors the real Registry.Snapshot: the guard is not the first
// statement, but it IS the first receiver use. Legal.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	return out
}

// reset is unexported: internal callers own the invariant.
func (r *Registry) reset() {
	r.counters = nil
}

type Gauge struct {
	v float64
}

// Set has a value receiver: nil is impossible, no guard needed.
func (g Gauge) Set(v float64) {}

// Name never touches the receiver: nothing to guard.
func (g *Gauge) Name() string {
	return "gauge"
}

//spfail:allow nilsafe hot path, caller guarantees non-nil
func (g *Gauge) Bump() {
	g.v++
}
