package nilsafe_test

import (
	"testing"

	"spfail/tools/analyzers/analysistest"
	"spfail/tools/analyzers/passes/nilsafe"
)

func TestNilSafe(t *testing.T) {
	analysistest.Run(t, "testdata/src/telemetry", "telemetry", nilsafe.Analyzer)
}

func TestNilSafeOtherPackagesIgnored(t *testing.T) {
	// The same source under a non-telemetry import path produces nothing.
	analysistest.Run(t, "testdata/src/other", "other", nilsafe.Analyzer)
}
