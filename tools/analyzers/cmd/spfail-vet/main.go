// Command spfail-vet runs the project's static-analysis suite over a Go
// module: wallclock, seededrand, nilsafe, decodepanic, and deadlinecheck
// (see docs/static-analysis.md in the root repository).
//
//	spfail-vet [-C moduledir] [packages...]
//
// Packages default to ./... relative to the module directory. The exit
// status is 1 when any unsuppressed diagnostic is reported, 2 on load
// errors. Diagnostics are suppressed by an adjacent comment of the form
// `//spfail:allow <pass> <reason>`.
//
// The tool lives in its own module so the root module stays dependency-
// free; it is stdlib-only and drives type-checking through the go
// toolchain (`go list -export`), so it needs no network access.
package main

import (
	"flag"
	"fmt"
	"os"

	"spfail/tools/analyzers/analysis"
	"spfail/tools/analyzers/internal/load"
	"spfail/tools/analyzers/passes"
)

func main() {
	var (
		dir  = flag.String("C", ".", "directory of the module to analyze")
		list = flag.Bool("list", false, "print the suite's passes and exit")
	)
	flag.Parse()

	suite := passes.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	fset, pkgs, err := load.Module(*dir, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfail-vet: %v\n", err)
		os.Exit(2)
	}

	bad := 0
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			PkgPath:   pkg.PkgPath,
		}
		diags, err := analysis.Run(pass, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spfail-vet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad++
			fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Pass, d.Message)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "spfail-vet: %d unsuppressed diagnostic(s)\n", bad)
		os.Exit(1)
	}
}
