package main

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolationModule builds and runs the real binary against the
// testdata/badmodule fixture, which seeds one violation per new pass. This
// is the end-to-end proof that the multichecker wiring — load, run,
// suppression filtering, exit status — catches what the unit fixtures
// catch: if a pass falls out of passes.All() its seeded diagnostic
// disappears and this test fails.
func TestSeededViolationModule(t *testing.T) {
	fixture, err := filepath.Abs(filepath.Join("..", "..", "testdata", "badmodule"))
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", ".", "-C", fixture, "./...")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()

	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("want exit error, got err=%v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	if code := exit.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1 (2 means load error)\nstdout:\n%s\nstderr:\n%s",
			code, &stdout, &stderr)
	}

	out := stdout.String()
	for _, pass := range []string{"poolhygiene", "lockguard", "hotpathalloc", "metricnames"} {
		if !strings.Contains(out, pass+":") {
			t.Errorf("output missing a %s diagnostic:\n%s", pass, out)
		}
	}
	// The control sites (lock.Good, the cold functions) must stay clean:
	// every diagnostic line must point into the fixture's seeded files.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "badmodule") {
			t.Errorf("diagnostic outside the fixture module: %q", line)
		}
	}
}

// TestListFlag keeps the -list inventory in sync with the suite: a pass
// added to passes.All() must show up here, since CI operators use -list to
// see what the lint job enforces.
func TestListFlag(t *testing.T) {
	cmd := exec.Command("go", "run", ".", "-list")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("spfail-vet -list: %v\n%s", err, out)
	}
	for _, pass := range []string{
		"wallclock", "seededrand", "nilsafe", "decodepanic", "deadlinecheck",
		"poolhygiene", "lockguard", "hotpathalloc", "metricnames",
	} {
		if !strings.Contains(string(out), pass) {
			t.Errorf("-list missing pass %q:\n%s", pass, out)
		}
	}
}
