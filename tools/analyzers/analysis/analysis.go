// Package analysis is a dependency-free miniature of golang.org/x/tools'
// go/analysis: an Analyzer is a named check over one type-checked package,
// a Pass is one invocation of it, and Diagnostics are positioned findings.
//
// The x/tools module is deliberately not vendored — the root module's
// dependency-free property extends to its tooling — so this package keeps
// the same conceptual surface (Analyzer.Run(*Pass), Pass.Reportf) to make a
// future migration mechanical.
//
// Suppression: a diagnostic is dropped when the offending line, or the line
// directly above it, carries a comment of the form
//
//	//spfail:allow <pass> <reason>
//
// The reason is mandatory; an allow comment without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the pass in diagnostics and suppression comments.
	Name string
	// Doc is a one-paragraph description shown by spfail-vet -list.
	Doc string
	// Run executes the check, reporting findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's worth of inputs to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg and TypesInfo hold the type-checked package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path under analysis (fixture paths in tests,
	// module paths in the real run).
	PkgPath string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Pass: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Pass    string
	Message string
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Test code is exempt from the determinism passes: tests may use the wall
// clock and unseeded randomness freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// allowMarker introduces a suppression comment.
const allowMarker = "//spfail:allow"

// suppressionIndex maps file → line → set of allowed pass names.
type suppressionIndex map[string]map[int]map[string]bool

// buildSuppressions scans every comment in files for allow markers. A
// malformed marker (no pass name, or no reason) yields a diagnostic so
// suppressions cannot silently rot.
func buildSuppressions(fset *token.FileSet, files []*ast.File) (suppressionIndex, []Diagnostic) {
	idx := make(suppressionIndex)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowMarker) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowMarker)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     c.Pos(),
						Pass:    "suppression",
						Message: "malformed //spfail:allow: want \"//spfail:allow <pass> <reason>\"",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]bool)
				}
				lines[pos.Line][fields[0]] = true
			}
		}
	}
	return idx, malformed
}

// suppressed reports whether d is covered by an allow comment on its own
// line or the line directly above.
func (idx suppressionIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][d.Pass] || lines[pos.Line-1][d.Pass]
}

// Run executes analyzers over one package and returns the unsuppressed
// diagnostics sorted by position. Malformed suppression comments are
// reported alongside the passes' own findings.
func Run(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx, malformed := buildSuppressions(pass.Fset, pass.Files)
	diags := malformed
	for _, a := range analyzers {
		p := *pass
		p.Analyzer = a
		p.report = func(d Diagnostic) {
			if !idx.suppressed(pass.Fset, d) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pass.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pass.Fset.Position(diags[i].Pos), pass.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}
