package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// flagEveryCall reports a diagnostic at every call expression, which makes
// suppression behavior easy to probe.
var flagEveryCall = &Analyzer{
	Name: "flagcall",
	Doc:  "test analyzer: flags every call",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					p.Reportf(c.Pos(), "call flagged")
				}
				return true
			})
		}
		return nil
	},
}

func runOn(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Fset:    fset,
		Files:   []*ast.File{f},
		Pkg:     types.NewPackage("p", "p"),
		PkgPath: "p",
	}
	diags, err := Run(pass, []*Analyzer{flagEveryCall})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestSuppressionSameLineAndAbove(t *testing.T) {
	diags := runOn(t, `package p

func g() {}

func h() {
	g() //spfail:allow flagcall known-good call
	//spfail:allow flagcall the next line is fine too
	g()
	g()
}
`)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d, want 1 (only the unsuppressed call): %v", len(diags), diags)
	}
	if diags[0].Pass != "flagcall" {
		t.Errorf("pass = %q", diags[0].Pass)
	}
}

func TestSuppressionIsPerPass(t *testing.T) {
	diags := runOn(t, `package p

func g() {}

func h() {
	g() //spfail:allow otherpass reason does not cover flagcall
}
`)
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d, want 1 (allow names a different pass): %v", len(diags), diags)
	}
}

func TestMalformedSuppressionReported(t *testing.T) {
	diags := runOn(t, `package p

func g() {}

func h() {
	//spfail:allow flagcall
	g()
}
`)
	// The reason-less marker is itself reported, and it does not suppress.
	var sawMalformed, sawCall bool
	for _, d := range diags {
		switch d.Pass {
		case "suppression":
			sawMalformed = true
			if !strings.Contains(d.Message, "malformed") {
				t.Errorf("suppression message = %q", d.Message)
			}
		case "flagcall":
			sawCall = true
		}
	}
	if !sawMalformed || !sawCall {
		t.Fatalf("want malformed-marker and call diagnostics, got %v", diags)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := runOn(t, `package p

func g() {}

func h() {
	g()
	g()
}
`)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %d", len(diags))
	}
	if diags[0].Pos >= diags[1].Pos {
		t.Errorf("diagnostics not sorted: %v", diags)
	}
}
