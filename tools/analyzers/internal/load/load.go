// Package load type-checks Go packages without golang.org/x/tools. It
// shells out to `go list -deps -export -json` so the toolchain does the
// build-tag filtering and produces gc export data for every dependency,
// then parses the target packages from source and type-checks them with
// go/importer reading that export data. This works fully offline: the only
// inputs are the toolchain and the module's own sources.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output we consume.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
	DepsErrors []*struct{ Err string }
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json patterns...` in dir.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves imports from the
// gc export data files recorded in exports (import path → file path).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// StdExports resolves the transitive export data of the given standard
// library packages (for test fixtures, whose imports are std-only). dir
// must be inside any Go module so the go tool has a work context.
func StdExports(dir string, pkgs []string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, pkgs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Module loads every package matched by patterns (default "./...") in the
// module rooted at rootDir. Only non-test files are loaded — the passes
// deliberately do not see test code.
func Module(rootDir string, patterns []string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(rootDir)
	if err != nil {
		return nil, nil, err
	}
	listed, err := goList(abs, patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := ExportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if p.Standard || p.Module == nil {
			continue // dependency, not a target
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, fmt.Errorf("load: %s: %v", p.ImportPath, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("load: type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{PkgPath: p.ImportPath, Files: files, Pkg: tpkg, Info: info})
	}
	return fset, out, nil
}

// NewInfo allocates the types.Info maps the passes rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
