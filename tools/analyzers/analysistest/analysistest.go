// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against `// want "regexp"` comments, mirroring the
// golang.org/x/tools package of the same name. Fixtures live under a
// testdata directory, one package per directory; the directory's relative
// path becomes the package path (so a fixture under testdata/src/internal/
// clock exercises path-based exemptions). Fixture imports must be standard
// library packages — export data is resolved through the go toolchain.
//
// Unlike the go tool, the harness loads files named *_test.go too: the
// determinism passes exempt test files by name, and fixtures must be able
// to assert that exemption.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"spfail/tools/analyzers/analysis"
	"spfail/tools/analyzers/internal/load"
)

// wantRe extracts the quoted patterns of a `// want "a"` or "// want `a`"
// comment; both double-quoted and backquoted patterns are accepted, as in
// golang.org/x/tools.
var wantRe = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one `want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir, analyzes it as package path
// pkgpath, and reports mismatches between diagnostics and want comments on
// t. Suppression comments are honored, so fixtures can assert them.
func Run(t *testing.T, dir, pkgpath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, expects := parseFixture(t, fset, dir)

	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			imports[path] = true
		}
	}
	var importList []string
	for p := range imports {
		importList = append(importList, p)
	}
	sort.Strings(importList)

	exports, err := load.StdExports(".", importList)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: load.ExportImporter(fset, exports)}
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	pass := &analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		PkgPath:   pkgpath,
	}
	diags, err := analysis.Run(pass, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.file == filepath.Base(pos.Filename) && e.line == pos.Line && e.pattern.MatchString(d.Message) {
				e.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// parseFixture parses every .go file under dir and collects want comments.
func parseFixture(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, []*expectation) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", path, line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, pat, err)
					}
					expects = append(expects, &expectation{file: e.Name(), line: line, pattern: re})
				}
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	return files, expects
}
