// Package spfail is a reproduction of "SPFail: Discovering, Measuring, and
// Remediating Vulnerabilities in Email Sender Validation" (IMC 2022). It
// provides, as a library:
//
//   - a complete RFC 7208 SPF implementation (parsing, the full macro
//     language, and check_host() evaluation with DNS-lookup limits);
//   - a memory-safe behavioural port of the vulnerable libSPF2 macro
//     expander (CVE-2021-33912, CVE-2021-33913) and the other
//     non-compliant expansion behaviours observed in the wild;
//   - the paper's benign remote-detection technique: the NoMsg→BlankMsg
//     SMTP probe ladder and the DNS macro-expansion fingerprint
//     classifier;
//   - the full measurement harness — synthetic Internet population,
//     longitudinal campaign, notification study — that regenerates every
//     table and figure of the paper.
//
// This root package re-exports the stable surface; the implementation
// lives under internal/. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package spfail

import (
	"context"
	"net/netip"

	"spfail/internal/core"
	"spfail/internal/population"
	"spfail/internal/spf"
	"spfail/internal/spfimpl"
	"spfail/internal/study"
)

// SPF engine re-exports.
type (
	// Result is an SPF evaluation result (pass, fail, softfail, ...).
	Result = spf.Result
	// Record is a parsed SPF policy.
	Record = spf.Record
	// Checker evaluates SPF policies against a Resolver.
	Checker = spf.Checker
	// CheckResult is the outcome of Checker.CheckHost.
	CheckResult = spf.CheckResult
	// Resolver is the DNS dependency of the evaluator.
	Resolver = spf.Resolver
	// MacroEnv carries the per-transaction macro values.
	MacroEnv = spf.MacroEnv
)

// SPF results.
const (
	ResultNone      = spf.ResultNone
	ResultNeutral   = spf.ResultNeutral
	ResultPass      = spf.ResultPass
	ResultFail      = spf.ResultFail
	ResultSoftFail  = spf.ResultSoftFail
	ResultTempError = spf.ResultTempError
	ResultPermError = spf.ResultPermError
)

// ParseRecord parses the text of an SPF policy ("v=spf1 ...").
func ParseRecord(txt string) (*Record, error) { return spf.Parse(txt) }

// IsSPFRecord reports whether a TXT string is an SPF version-1 policy.
func IsSPFRecord(txt string) bool { return spf.IsSPFRecord(txt) }

// CheckHost evaluates the SPF policy of domain for a message from sender
// arriving from ip, resolving through r. It is the RFC 7208 check_host()
// entry point.
func CheckHost(ctx context.Context, r Resolver, ip netip.Addr, domain, sender, helo string) CheckResult {
	c := &Checker{Resolver: r}
	return c.CheckHost(ctx, ip, domain, sender, helo)
}

// ExpandMacros expands an SPF macro-string with the RFC-compliant
// expander.
func ExpandMacros(ctx context.Context, macroStr string, env *MacroEnv) (string, error) {
	return spf.Expander{}.Expand(ctx, macroStr, env, false)
}

// Implementation behaviours (the paper's taxonomy).
type (
	// Behavior names an SPF implementation's macro-expansion behaviour.
	Behavior = spfimpl.Behavior
	// LibSPF2Expander is the memory-safe port of the buggy libSPF2
	// expansion code path.
	LibSPF2Expander = spfimpl.LibSPF2Expander
	// OverflowEvent records a simulated heap overflow.
	OverflowEvent = spfimpl.OverflowEvent
)

// Behaviours.
const (
	BehaviorCompliant      = spfimpl.BehaviorCompliant
	BehaviorVulnLibSPF2    = spfimpl.BehaviorVulnLibSPF2
	BehaviorPatchedLibSPF2 = spfimpl.BehaviorPatchedLibSPF2
	BehaviorNoReverse      = spfimpl.BehaviorNoReverse
	BehaviorNoTruncate     = spfimpl.BehaviorNoTruncate
	BehaviorRawValue       = spfimpl.BehaviorRawValue
	BehaviorNoExpansion    = spfimpl.BehaviorNoExpansion
)

// NewChecker builds an SPF checker whose macro expansion behaves per b —
// use BehaviorVulnLibSPF2 to reproduce the vulnerable fingerprint.
func NewChecker(b Behavior, r Resolver) *Checker { return spfimpl.NewChecker(b, r) }

// Detection re-exports.
type (
	// Prober drives the NoMsg→BlankMsg remote-detection ladder.
	Prober = core.Prober
	// Outcome is the result of probing one mail-server address.
	Outcome = core.Outcome
	// Observation is the classified DNS evidence of one probe.
	Observation = core.Observation
	// BehaviorClass is a fingerprint verdict.
	BehaviorClass = core.BehaviorClass
)

// Fingerprint classes.
const (
	ClassCompliant    = core.ClassCompliant
	ClassVulnerable   = core.ClassVulnerable
	ClassNoReverse    = core.ClassNoReverse
	ClassNoTruncate   = core.ClassNoTruncate
	ClassRawValue     = core.ClassRawValue
	ClassNoExpansion  = core.ClassNoExpansion
	ClassMacroSkipped = core.ClassMacroSkipped
	ClassOther        = core.ClassOther
)

// Study re-exports.
type (
	// StudyConfig parameterizes a full end-to-end reproduction run.
	StudyConfig = study.Config
	// StudyResults carries the data behind every table and figure.
	StudyResults = study.Results
	// PopulationSpec parameterizes the synthetic Internet.
	PopulationSpec = population.Spec
)

// DefaultPopulationSpec returns the paper-calibrated population
// parameters.
func DefaultPopulationSpec() PopulationSpec { return population.DefaultSpec() }

// RunStudy executes the complete SPFail study (initial measurement,
// two-window longitudinal campaign, notification mailing, final snapshot)
// on a simulated clock and returns the aggregated results.
func RunStudy(ctx context.Context, cfg StudyConfig) (*StudyResults, error) {
	return study.Run(ctx, cfg)
}
