// Command spfail-scan probes one or more SMTP servers with the SPFail
// NoMsg→BlankMsg detection ladder and classifies each server's SPF macro
// expansion behaviour.
//
// The scanner runs its own measurement DNS zone (like cmd/spfail-dns); the
// probed server must resolve <base> through this process, so in a lab the
// zone is either delegated here or the server's resolver is pointed at
// -dns-listen.
//
//	spfail-scan -dns-listen 10.0.0.1:53 -base spf-test.lab \
//	    -rcpt-domain victim.lab 10.0.0.25:25 10.0.0.26:25
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/measure"
	"spfail/internal/netsim"
	"spfail/internal/retry"
	"spfail/internal/telemetry"
)

func main() {
	// Flag defaults come from the campaign configuration surface so the
	// CLI and library agree on the paper's operational parameters.
	def := measure.DefaultConfig()
	var (
		dnsListen  = flag.String("dns-listen", "127.0.0.1:5353", "address for the measurement DNS zone")
		base       = flag.String("base", "spf-test.dns-lab.org", "zone apex under our control")
		addr4      = flag.String("addr4", "192.0.2.25", "A record served under the zone")
		rcptDomain = flag.String("rcpt-domain", "", "domain used in RCPT TO (default: target host)")
		helo       = flag.String("helo", "probe.dns-lab.org", "HELO identity")
		suite      = flag.String("suite", "s01", "test-suite label")
		settle     = flag.Duration("settle", 2*time.Second, "wait for trailing DNS queries before classifying")
		timeout    = flag.Duration("timeout", def.IOTimeout, "SMTP I/O timeout")
		reconnect  = flag.Duration("reconnect-wait", def.ReconnectWait, "politeness gap between connections to the same server")
		greylist   = flag.Duration("greylist-wait", def.GreylistWait, "pause before retrying a 450 greylisting")
		retries    = flag.Int("retries", 1, "attempts per transiently-failed probe (1 disables retries)")
		retryBase  = flag.Duration("retry-base", 2*time.Second, "backoff before the first probe retry")
		metrics    = flag.Bool("metrics", false, "dump a JSON telemetry snapshot to stdout at exit")
		seed       = flag.Int64("seed", 0, "label-allocator seed for replayable scans (0: derive from the clock)")
	)
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: spfail-scan [flags] host:port ...")
		os.Exit(2)
	}

	baseName, err := dnsmsg.ParseName(*base)
	if err != nil {
		fatal("bad -base: %v", err)
	}
	a4, err := netip.ParseAddr(*addr4)
	if err != nil {
		fatal("bad -addr4: %v", err)
	}
	clk := clock.Real{}
	if *seed == 0 {
		*seed = clk.Now().UnixNano()
		fmt.Printf("spfail-scan: -seed %d (pass it back to replay label allocation)\n", *seed)
	}
	reg := telemetry.New()
	zone := &dnsserver.SPFTestZone{Base: baseName, Addr4: a4}
	collector := core.NewCollector(zone)
	handler := &dnsserver.LoggingHandler{Inner: zone, Sink: collector, Now: clk.Now}
	srv := &dnsserver.Server{Net: netsim.Real{}, Addr: *dnsListen, Handler: handler, Metrics: reg}
	if err := srv.Start(context.Background()); err != nil {
		fatal("starting DNS zone: %v", err)
	}
	defer srv.Stop()
	fmt.Printf("spfail-scan: measurement zone %s on %s\n", baseName, *dnsListen)

	prober := &core.Prober{
		Net:           netsim.Real{},
		HELO:          *helo,
		Clock:         clk,
		Zone:          zone,
		Labels:        core.NewLabelAllocator(*seed),
		Collector:     collector,
		Classifier:    core.NewClassifier(zone),
		Suite:         *suite,
		IOTimeout:     *timeout,
		GreylistWait:  *greylist,
		ReconnectWait: *reconnect,
		Metrics:       reg,
	}
	if *retries > 1 {
		prober.Retry = retry.Policy{
			MaxAttempts: *retries,
			BaseDelay:   *retryBase,
			MaxDelay:    16 * *retryBase,
			Jitter:      0.2,
			Seed:        *seed,
		}
	}

	exitCode := 0
	outcomeTotals := make(map[core.Status]int)
	for _, target := range targets {
		rd := *rcptDomain
		if rd == "" {
			rd = strings.Split(target, ":")[0]
		}
		fmt.Printf("\n== %s (rcpt domain %s)\n", target, rd)
		out := prober.TestIP(context.Background(), target, rd)
		// Give slow validators a moment for trailing lookups, then
		// reclassify with the full evidence.
		_ = clk.Sleep(context.Background(), *settle)
		printOutcome(out)
		outcomeTotals[out.Status]++
		if out.Vulnerable() {
			exitCode = 1
		}
	}
	if *metrics {
		fmt.Printf("\n-- metrics (probe.outcome.* must equal the scan's outcome totals: %v)\n", outcomeTotals)
		if err := reg.Snapshot().WriteJSON(os.Stdout); err != nil {
			fatal("writing metrics: %v", err)
		}
	}
	srv.Stop()
	os.Exit(exitCode)
}

func printOutcome(out core.Outcome) {
	fmt.Printf("  status:   %s\n", out.Status)
	if out.Method != "" {
		fmt.Printf("  method:   %s\n", out.Method)
	}
	if out.Err != nil {
		fmt.Printf("  error:    %v (stage %s)\n", out.Err, out.FailStage)
	}
	o := out.Observation
	fmt.Printf("  policy fetched: %v, liveness term resolved: %v\n", o.PolicyFetched, o.LivenessSeen)
	for i, p := range o.Patterns {
		fmt.Printf("  pattern:  %-20s → %s\n", o.Classes[i], p)
	}
	switch {
	case out.Vulnerable():
		fmt.Printf("  VERDICT:  VULNERABLE libSPF2 (CVE-2021-33912/33913)\n")
	case out.Status == core.StatusSPFMeasured:
		fmt.Printf("  VERDICT:  %s\n", o.DominantClass())
	default:
		fmt.Printf("  VERDICT:  inconclusive\n")
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "spfail-scan: "+format+"\n", args...)
	os.Exit(2)
}
