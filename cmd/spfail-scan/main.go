// Command spfail-scan probes one or more SMTP servers with the SPFail
// NoMsg→BlankMsg detection ladder and classifies each server's SPF macro
// expansion behaviour.
//
// The scanner runs its own measurement DNS zone (like cmd/spfail-dns); the
// probed server must resolve <base> through this process, so in a lab the
// zone is either delegated here or the server's resolver is pointed at
// -dns-listen.
//
//	spfail-scan -dns-listen 10.0.0.1:53 -base spf-test.lab \
//	    -rcpt-domain victim.lab 10.0.0.25:25 10.0.0.26:25
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"strings"
	"sync"
	"time"

	"spfail/cmd/internal/cliflags"
	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/dnsclient"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/measure"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/obs"
	"spfail/internal/spf"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

func main() {
	// Flag defaults come from the campaign configuration surface so the
	// CLI and library agree on the paper's operational parameters.
	def := measure.DefaultConfig()
	var (
		dnsListen  = flag.String("dns-listen", "127.0.0.1:5353", "address for the measurement DNS zone")
		base       = flag.String("base", "spf-test.dns-lab.org", "zone apex under our control")
		addr4      = flag.String("addr4", "192.0.2.25", "A record served under the zone")
		rcptDomain = flag.String("rcpt-domain", "", "domain used in RCPT TO (default: target host)")
		helo       = flag.String("helo", "probe.dns-lab.org", "HELO identity")
		suite      = flag.String("suite", "s01", "test-suite label")
		settle     = flag.Duration("settle", 2*time.Second, "wait for trailing DNS queries before classifying")
		timeout    = flag.Duration("timeout", def.IOTimeout, "SMTP I/O timeout")
		reconnect  = flag.Duration("reconnect-wait", def.ReconnectWait, "politeness gap between connections to the same server")
		greylist   = flag.Duration("greylist-wait", def.GreylistWait, "pause before retrying a 450 greylisting")
		spoofFrom  = flag.String("spoof-from", "", "comma-separated From domains to judge for spoofability (SPF check_host + DMARC) instead of probing")
		spoofDNS   = flag.String("spoof-dns", "", "resolver address for -spoof-from lookups, e.g. 127.0.0.1:5353")
		spoofIP    = flag.String("spoof-ip", "203.0.113.66", "forged source address for -spoof-from verdicts")
	)
	common := cliflags.Register(flag.CommandLine, cliflags.Options{
		SeedDefault:      0,
		SeedUsage:        "label-allocator seed for replayable scans (0: derive from the clock)",
		MetricsUsage:     "dump a JSON telemetry snapshot to stdout at exit",
		TraceSampleUsage: "fraction of probes traced, decided deterministically per target index",
	})
	flag.Parse()
	targets := flag.Args()
	if *spoofFrom != "" {
		os.Exit(spoofVerdicts(*spoofFrom, *spoofDNS, *spoofIP, *helo, *timeout))
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: spfail-scan [flags] host:port ...")
		fmt.Fprintln(os.Stderr, "       spfail-scan -spoof-from victim.example -spoof-dns 127.0.0.1:5353")
		os.Exit(2)
	}

	baseName, err := dnsmsg.ParseName(*base)
	if err != nil {
		fatal("bad -base: %v", err)
	}
	a4, err := netip.ParseAddr(*addr4)
	if err != nil {
		fatal("bad -addr4: %v", err)
	}
	clk := clock.Real{}
	if common.Seed == 0 {
		common.Seed = clk.Now().UnixNano()
		fmt.Printf("spfail-scan: -seed %d (pass it back to replay label allocation)\n", common.Seed)
	}
	reg := telemetry.New()
	// Runtime resource telemetry: live runtime.* gauges for the -listen
	// endpoint, and a final reading in the -metrics JSON snapshot.
	runtimeColl := obs.NewCollector(reg, clk, 0)
	runtimeColl.Start()
	// flushTrace is called explicitly before the final os.Exit — deferred
	// flushes would never run and leave the buffered JSONL on the floor.
	tracer, flushTrace, err := common.OpenTrace()
	if err != nil {
		fatal("%v", err)
	}
	zone := &dnsserver.SPFTestZone{Base: baseName, Addr4: a4}
	collector := core.NewCollector(zone)
	handler := &dnsserver.LoggingHandler{Inner: zone, Sink: collector, Now: clk.Now}
	srv := &dnsserver.Server{Net: netsim.Real{}, Addr: *dnsListen, Handler: handler, Metrics: reg, Trace: tracer}
	if err := srv.Start(context.Background()); err != nil {
		fatal("starting DNS zone: %v", err)
	}
	defer srv.Stop()
	fmt.Printf("spfail-scan: measurement zone %s on %s\n", baseName, *dnsListen)

	prober := &core.Prober{
		Net:           netsim.Real{},
		HELO:          *helo,
		Clock:         clk,
		Zone:          zone,
		Labels:        core.NewLabelAllocator(common.Seed),
		Collector:     collector,
		Classifier:    core.NewClassifier(zone),
		Suite:         *suite,
		IOTimeout:     *timeout,
		GreylistWait:  *greylist,
		ReconnectWait: *reconnect,
		Metrics:       reg,
	}
	prober.Retry = common.RetryPolicy()

	var healthMu sync.Mutex
	health := telemetry.Health{OK: true, Stage: "scanning", Total: len(targets)}
	stopServe := common.Serve("spfail-scan", reg, func() telemetry.Health {
		healthMu.Lock()
		defer healthMu.Unlock()
		return health
	})
	defer stopServe()

	exitCode := 0
	outcomeTotals := make(map[core.Status]int)
	for i, target := range targets {
		rd := *rcptDomain
		if rd == "" {
			rd = strings.Split(target, ":")[0]
		}
		fmt.Printf("\n== %s (rcpt domain %s)\n", target, rd)
		out := scanOne(tracer, prober, clk, *suite, uint64(i), target, rd, *settle)
		printOutcome(out)
		outcomeTotals[out.Status]++
		if out.Vulnerable() {
			exitCode = 1
		}
		healthMu.Lock()
		health.Probed = i + 1
		healthMu.Unlock()
	}
	if err := tracer.Err(); err != nil {
		fatal("writing trace: %v", err)
	}
	if err := flushTrace(); err != nil {
		fatal("writing trace: %v", err)
	}
	// Stopped explicitly (not deferred): the takes-no-defers os.Exit below,
	// and the Stop itself folds one last runtime.* reading into the snapshot.
	runtimeColl.Stop()
	if common.Metrics {
		fmt.Printf("\n-- metrics (probe.outcome.* must equal the scan's outcome totals: %v)\n", outcomeTotals)
		if err := reg.Snapshot().WriteJSON(os.Stdout); err != nil {
			fatal("writing metrics: %v", err)
		}
	}
	srv.Stop()
	os.Exit(exitCode)
}

// scanOne probes one target inside its trace buffer (when tracing), then
// waits for trailing DNS queries before classifying. The root span adopts
// the target's host so DNS-zone queries arriving from the target itself
// attribute to this probe.
func scanOne(tracer *trace.Tracer, prober *core.Prober, clk clock.Clock, suite string, index uint64, target, rcptDomain string, settle time.Duration) core.Outcome {
	ctx := context.Background()
	buf := tracer.ProbeBuffer(clk, suite, index)
	if buf == nil {
		out := prober.TestIP(ctx, target, rcptDomain)
		_ = clk.Sleep(ctx, settle)
		return out
	}
	root := buf.Root("probe",
		trace.String("suite", suite),
		trace.Int64("index", int64(index)),
		trace.String("addr", target),
		trace.String("rcpt_domain", rcptDomain),
	)
	host := target
	if h, _, err := net.SplitHostPort(target); err == nil {
		host = h
	}
	release := root.Adopt(host)
	out := prober.TestIP(trace.ContextWithSpan(ctx, root), target, rcptDomain)
	// Give slow validators a moment for trailing lookups, then reclassify
	// with the full evidence; late zone queries still land on the root span.
	_ = clk.Sleep(ctx, settle)
	release()
	root.SetAttrs(
		trace.String("status", string(out.Status)),
		trace.String("method", string(out.Method)),
		trace.Int("attempts", out.Attempts),
		trace.Bool("vulnerable", out.Vulnerable()),
	)
	if out.FailReason != "" {
		root.SetAttrs(trace.String("fail_reason", out.FailReason))
	}
	if out.Err != nil {
		root.SetAttrs(trace.String("error", out.Err.Error()))
	}
	root.End()
	tracer.FlushBuffer(buf)
	return out
}

// spoofVerdicts judges each -spoof-from domain through the real
// resolution path: SPF check_host for a forged envelope from spoofIP,
// then DMARC discovery and alignment over the same resolver. Exit code 1
// when any domain's forged message would be delivered.
func spoofVerdicts(fromList, dnsAddr, spoofIP, helo string, timeout time.Duration) int {
	if dnsAddr == "" {
		fatal("-spoof-from requires -spoof-dns (resolver address)")
	}
	ip, err := netip.ParseAddr(spoofIP)
	if err != nil {
		fatal("bad -spoof-ip: %v", err)
	}
	res := dnsclient.NewResolver(&dnsclient.Client{
		Net:     netsim.Real{},
		Server:  dnsAddr,
		Timeout: timeout,
	})
	eval := &core.VerdictEvaluator{
		Checker: &spf.Checker{Resolver: mta.ResolverAdapter{R: res}},
		HELO:    helo,
	}
	code := 0
	ctx := context.Background()
	for _, dom := range strings.Split(fromList, ",") {
		dom = strings.TrimSpace(dom)
		if dom == "" {
			continue
		}
		v := eval.Evaluate(ctx, ip, dom, dom, "")
		fmt.Printf("\n== spoof %s from %s\n", dom, ip)
		fmt.Printf("  spf:      %s", v.SPF)
		if v.SPFMechanism != "" {
			fmt.Printf(" (matched %s)", v.SPFMechanism)
		}
		if v.SPFErr != "" {
			fmt.Printf(" — %s", v.SPFErr)
		}
		fmt.Println()
		switch {
		case v.DMARCErr != "":
			fmt.Printf("  dmarc:    discovery error — %s\n", v.DMARCErr)
		case !v.DMARC.Found:
			fmt.Printf("  dmarc:    no record\n")
		default:
			fmt.Printf("  dmarc:    p=%s at %s, aligned pass: %v\n",
				v.DMARC.Disposition, v.DMARC.Domain, v.DMARC.Pass)
		}
		fmt.Printf("  VERDICT:  %s\n", v.Outcome())
		if v.Delivered() {
			code = 1
		}
	}
	return code
}

func printOutcome(out core.Outcome) {
	fmt.Printf("  status:   %s\n", out.Status)
	if out.Method != "" {
		fmt.Printf("  method:   %s\n", out.Method)
	}
	if out.Err != nil {
		fmt.Printf("  error:    %v (stage %s)\n", out.Err, out.FailStage)
	}
	if out.Attempts > 1 {
		fmt.Printf("  attempts: %d\n", out.Attempts)
	}
	if out.FailReason != "" {
		fmt.Printf("  reason:   %s\n", out.FailReason)
	}
	o := out.Observation
	fmt.Printf("  policy fetched: %v, liveness term resolved: %v\n", o.PolicyFetched, o.LivenessSeen)
	for i, p := range o.Patterns {
		fmt.Printf("  pattern:  %-20s → %s\n", o.Classes[i], p)
	}
	switch {
	case out.Vulnerable():
		fmt.Printf("  VERDICT:  VULNERABLE libSPF2 (CVE-2021-33912/33913)\n")
	case out.Status == core.StatusSPFMeasured:
		fmt.Printf("  VERDICT:  %s\n", o.DominantClass())
	default:
		fmt.Printf("  VERDICT:  inconclusive\n")
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "spfail-scan: "+format+"\n", args...)
	os.Exit(2)
}
