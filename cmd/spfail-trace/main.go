// Command spfail-trace reads a JSONL trace file produced by
// spfail-study -trace or spfail-scan -trace and renders human-readable
// span trees: the full causal chain (SMTP verbs → SPF evaluation → DNS
// transactions → fault and retry decisions) behind one probe's
// classification.
//
//	spfail-trace -list out.jsonl
//	spfail-trace -probe s01-000042 out.jsonl
//	spfail-trace -addr 203.0.113.7 out.jsonl
//	spfail-trace -domain mail.example.org out.jsonl
//
// Selectors match the probe root span's attributes; -probe matches by
// trace-ID prefix so the hash suffix can be omitted. Without a selector
// every trace in the file is rendered.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"spfail/internal/trace"
)

func main() {
	var (
		probe  = flag.String("probe", "", "render the trace whose ID has this prefix (e.g. s01-000042)")
		addr   = flag.String("addr", "", "render traces whose probe targeted this address")
		domain = flag.String("domain", "", "render traces whose probe used this RCPT domain")
		list   = flag.Bool("list", false, "list one summary line per trace instead of rendering trees")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spfail-trace [-list] [-probe ID|-addr IP|-domain D] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	recs, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}
	traces := group(recs)
	if len(traces) == 0 {
		fatal("no spans in %s", flag.Arg(0))
	}

	selected := traces[:0:0]
	for _, tr := range traces {
		if matches(tr, *probe, *addr, *domain) {
			selected = append(selected, tr)
		}
	}
	if len(selected) == 0 {
		fatal("no trace matches the selection (%d traces in file; try -list)", len(traces))
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, tr := range selected {
		if *list {
			fmt.Fprintln(w, tr.summary())
			continue
		}
		if i > 0 {
			fmt.Fprintln(w)
		}
		tr.render(w)
	}
}

// spanTree is one trace's records indexed for rendering.
type spanTree struct {
	id       string
	byID     map[uint32]trace.Record
	children map[uint32][]uint32 // parent → span IDs, in record order
	roots    []uint32
}

// group partitions records by trace ID, preserving first-seen order.
func group(recs []trace.Record) []*spanTree {
	var out []*spanTree
	index := make(map[string]*spanTree)
	for _, r := range recs {
		tr := index[r.Trace]
		if tr == nil {
			tr = &spanTree{
				id:       r.Trace,
				byID:     make(map[uint32]trace.Record),
				children: make(map[uint32][]uint32),
			}
			index[r.Trace] = tr
			out = append(out, tr)
		}
		tr.byID[r.Span] = r
		if r.Parent == 0 {
			tr.roots = append(tr.roots, r.Span)
		} else {
			tr.children[r.Parent] = append(tr.children[r.Parent], r.Span)
		}
	}
	return out
}

// root returns the trace's first root record (the probe span).
func (t *spanTree) root() trace.Record {
	if len(t.roots) == 0 {
		return trace.Record{}
	}
	return t.byID[t.roots[0]]
}

func matches(t *spanTree, probe, addr, domain string) bool {
	if probe == "" && addr == "" && domain == "" {
		return true
	}
	r := t.root()
	if probe != "" && strings.HasPrefix(t.id, probe) {
		return true
	}
	if addr != "" && r.Attrs["addr"] == addr {
		return true
	}
	if domain != "" && r.Attrs["rcpt_domain"] == domain {
		return true
	}
	return false
}

// summary is the -list line: trace ID plus the probe root's telling attrs.
func (t *spanTree) summary() string {
	r := t.root()
	var b strings.Builder
	b.WriteString(t.id)
	for _, k := range []string{"addr", "rcpt_domain", "status", "method", "vulnerable"} {
		if v := r.Attrs[k]; v != "" {
			fmt.Fprintf(&b, "  %s=%s", k, v)
		}
	}
	return b.String()
}

func (t *spanTree) render(w *bufio.Writer) {
	fmt.Fprintf(w, "trace %s\n", t.id)
	base := t.root().Start
	for i, id := range t.roots {
		t.renderSpan(w, id, "", i == len(t.roots)-1, base)
	}
}

// renderSpan prints one span line and recurses into its children with
// box-drawing guides.
func (t *spanTree) renderSpan(w *bufio.Writer, id uint32, prefix string, last bool, base time.Time) {
	r := t.byID[id]
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	fmt.Fprintf(w, "%s%s%s%s%s\n", prefix, branch, r.Name, timing(r, base), attrString(r.Attrs))
	kids := t.children[id]
	for i, kid := range kids {
		t.renderSpan(w, kid, childPrefix, i == len(kids)-1, base)
	}
}

// timing renders "+offset" from the trace root plus the span duration;
// instantaneous events (start == end) show only the offset.
func timing(r trace.Record, base time.Time) string {
	off := r.Start.Sub(base)
	if r.End.Equal(r.Start) {
		return fmt.Sprintf("  [+%s]", off)
	}
	return fmt.Sprintf("  [+%s %s]", off, r.End.Sub(r.Start))
}

// attrString renders attributes as sorted key=value pairs.
func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%q", k, attrs[k])
	}
	return "  {" + strings.TrimSpace(b.String()) + "}"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spfail-trace: "+format+"\n", args...)
	os.Exit(1)
}
