// Package cliflags registers the flag surface the spfail measurement
// binaries share, so spfail-scan and spfail-study agree on names,
// defaults, and semantics for seeds, retries, tracing, telemetry, and
// the live observability endpoint. Binary-specific flags stay in each
// main; anything registered here must mean the same thing everywhere.
package cliflags

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"spfail/internal/retry"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

// Common holds the parsed values of the shared flags.
type Common struct {
	Seed        int64
	Retries     int
	RetryBase   time.Duration
	Metrics     bool
	TraceOut    string
	TraceSample float64
	Listen      string
}

// Options customises per-binary defaults and help text where a flag's
// meaning is shared but its phrasing differs.
type Options struct {
	// SeedDefault is the -seed default (spfail-scan derives from the
	// clock at 0; spfail-study fixes 1 for reproducible worlds).
	SeedDefault int64
	// SeedUsage overrides the -seed help text.
	SeedUsage string
	// MetricsUsage overrides the -metrics help text.
	MetricsUsage string
	// TraceSampleUsage overrides the -trace-sample help text.
	TraceSampleUsage string
}

// Register installs the shared flags on fs and returns the struct their
// parsed values land in. Call it before fs.Parse.
func Register(fs *flag.FlagSet, opt Options) *Common {
	c := &Common{}
	seedUsage := opt.SeedUsage
	if seedUsage == "" {
		seedUsage = "seed for deterministic replay"
	}
	metricsUsage := opt.MetricsUsage
	if metricsUsage == "" {
		metricsUsage = "dump a JSON telemetry snapshot at exit"
	}
	sampleUsage := opt.TraceSampleUsage
	if sampleUsage == "" {
		sampleUsage = "fraction of probes traced, decided deterministically per probe index"
	}
	fs.Int64Var(&c.Seed, "seed", opt.SeedDefault, seedUsage)
	fs.IntVar(&c.Retries, "retries", 1, "attempts per transiently-failed probe (1 disables retries)")
	fs.DurationVar(&c.RetryBase, "retry-base", 2*time.Second, "backoff before the first probe retry")
	fs.BoolVar(&c.Metrics, "metrics", false, metricsUsage)
	fs.StringVar(&c.TraceOut, "trace", "", "write per-probe causal spans to this JSONL file (read with spfail-trace; see docs/tracing.md)")
	fs.Float64Var(&c.TraceSample, "trace-sample", 1, sampleUsage)
	fs.StringVar(&c.Listen, "listen", "", "serve live /metrics (Prometheus text), /healthz, and /debug/pprof on this address, e.g. :8089")
	return c
}

// RetryPolicy builds the probe retry policy from -retries/-retry-base,
// seeded from -seed. The zero policy (MaxAttempts <= 1) disables
// retries, matching how core.Prober and the campaign config treat it.
func (c *Common) RetryPolicy() retry.Policy {
	if c.Retries <= 1 {
		return retry.Policy{}
	}
	return retry.Policy{
		MaxAttempts: c.Retries,
		BaseDelay:   c.RetryBase,
		MaxDelay:    16 * c.RetryBase,
		Jitter:      0.2,
		Seed:        c.Seed,
	}
}

// OpenTrace opens the -trace JSONL sink seeded from -seed. With no
// -trace it returns a nil tracer (all tracer methods are nil-safe) and
// a no-op flush. The caller must invoke flush explicitly before its
// final os.Exit — a deferred flush would never run — after checking
// tracer.Err().
func (c *Common) OpenTrace() (tracer *trace.Tracer, flush func() error, err error) {
	if c.TraceOut == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(c.TraceOut)
	if err != nil {
		return nil, nil, err
	}
	tw := bufio.NewWriter(f)
	flush = func() error {
		if err := tw.Flush(); err != nil {
			return err
		}
		return f.Close()
	}
	return trace.New(tw, trace.Options{Seed: c.Seed, Sample: c.TraceSample}), flush, nil
}

// Serve starts the -listen observability endpoint over reg and health,
// returning a shutdown function. With no -listen both the server and
// the returned stop are no-ops. name prefixes server errors on stderr.
func (c *Common) Serve(name string, reg *telemetry.Registry, health telemetry.HealthFunc) (stop func()) {
	if c.Listen == "" {
		return func() {}
	}
	srv := &http.Server{Addr: c.Listen, Handler: telemetry.HTTPHandler(reg, health)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "%s: -listen: %v\n", name, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "observability endpoint on %s (/metrics, /healthz, /debug/pprof)\n", c.Listen)
	return func() { srv.Close() }
}
