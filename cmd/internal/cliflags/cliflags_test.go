package cliflags

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRegisterDefaultsAndParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs, Options{SeedDefault: 7, SeedUsage: "world seed"})
	if err := fs.Parse(nil); err != nil {
		t.Fatalf("parse no args: %v", err)
	}
	if c.Seed != 7 || c.Retries != 1 || c.RetryBase != 2*time.Second ||
		c.Metrics || c.TraceOut != "" || c.TraceSample != 1 || c.Listen != "" {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if f := fs.Lookup("seed"); f == nil || f.Usage != "world seed" {
		t.Errorf("seed usage not overridden: %+v", f)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	c = Register(fs, Options{})
	args := []string{
		"-seed", "42", "-retries", "3", "-retry-base", "4s", "-metrics",
		"-trace", "out.jsonl", "-trace-sample", "0.5", "-listen", ":8089",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.Seed != 42 || c.Retries != 3 || c.RetryBase != 4*time.Second ||
		!c.Metrics || c.TraceOut != "out.jsonl" || c.TraceSample != 0.5 || c.Listen != ":8089" {
		t.Errorf("unexpected parsed values: %+v", c)
	}
}

func TestRetryPolicy(t *testing.T) {
	c := &Common{Seed: 9, Retries: 1, RetryBase: 2 * time.Second}
	if p := c.RetryPolicy(); p.MaxAttempts != 0 {
		t.Errorf("retries=1 should disable the policy, got %+v", p)
	}
	c.Retries = 3
	p := c.RetryPolicy()
	if p.MaxAttempts != 3 || p.BaseDelay != 2*time.Second ||
		p.MaxDelay != 32*time.Second || p.Jitter != 0.2 || p.Seed != 9 {
		t.Errorf("unexpected policy: %+v", p)
	}
}

func TestOpenTrace(t *testing.T) {
	c := &Common{}
	tr, flush, err := c.OpenTrace()
	if err != nil || tr != nil {
		t.Fatalf("no -trace should yield nil tracer, got %v, %v", tr, err)
	}
	if err := flush(); err != nil {
		t.Fatalf("no-op flush: %v", err)
	}

	c.TraceOut = filepath.Join(t.TempDir(), "probe.jsonl")
	c.Seed = 3
	tr, flush, err = c.OpenTrace()
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	if tr == nil {
		t.Fatal("expected a tracer")
	}
	if err := flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := os.Stat(c.TraceOut); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
}

func TestServeWithoutListenIsNoop(t *testing.T) {
	c := &Common{}
	stop := c.Serve("test", nil, nil)
	stop() // must not panic
}
