// Command spfail-study regenerates the paper's complete evaluation: it
// builds the synthetic Internet, runs the October-to-February measurement
// campaign on a virtual clock, performs the notification mailing, and
// prints every table and figure.
//
//	spfail-study -scale 0.05 -seed 1
//
// Scale 1.0 reproduces the paper's full population sizes (~420K domains);
// the default keeps a laptop run in the minutes range.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/study"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.02, "population scale relative to the paper")
		seed        = flag.Int64("seed", 1, "world generation seed")
		concurrency = flag.Int("concurrency", 250, "max concurrent SMTP probes")
		batch       = flag.Int("batch", 2000, "simulated hosts brought up per wave")
		interval    = flag.Duration("interval", 48*time.Hour, "longitudinal cadence (virtual)")
		csvDir      = flag.String("csv", "", "directory to write figure data as CSV (optional)")
		verbose     = flag.Bool("v", true, "print progress to stderr")
	)
	flag.Parse()

	spec := population.DefaultSpec()
	spec.Scale = *scale
	spec.Seed = *seed

	cfg := study.Config{
		Spec:        spec,
		Concurrency: *concurrency,
		BatchSize:   *batch,
		Interval:    *interval,
	}
	if *verbose {
		start := time.Now()
		cfg.Progress = func(stage string) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), stage)
		}
	}

	res, err := study.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "SPFail reproduction — scale %.3f, seed %d\n", *scale, *seed)
	fmt.Fprintf(w, "domains: %s   addresses: %s   initially vulnerable: %s addrs / %s domains\n\n",
		report.Count(len(res.World.Domains)),
		report.Count(len(res.World.Hosts)),
		report.Count(len(res.VulnAddrs)),
		report.Count(len(res.VulnDomains)))
	report.All(w, res)

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: writing CSVs: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figure data written to %s\n", *csvDir)
	}
}

// writeCSVs exports the figures' underlying data for external plotting.
func writeCSVs(dir string, res *study.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(dir + "/" + name)
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	series := map[string]population.Set{
		"fig5_all_domains.csv":   0,
		"fig7_alexa_toplist.csv": population.SetAlexaTopList,
		"fig7_2week_mx.csv":      population.SetTwoWeekMX,
		"fig8_alexa_1000.csv":    population.SetAlexa1000,
	}
	for name, set := range series {
		set := set
		if err := write(name, func(f *os.File) error {
			return report.SeriesCSV(f, study.SetSeries(res, set))
		}); err != nil {
			return err
		}
	}
	return write("fig3_choropleth.csv", func(f *os.File) error {
		buckets, _ := study.Figure3(res, 5)
		return report.ChoroplethCSV(f, buckets)
	})
}
