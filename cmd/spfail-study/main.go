// Command spfail-study regenerates the paper's complete evaluation: it
// builds the synthetic Internet, runs the October-to-February measurement
// campaign on a virtual clock, performs the notification mailing, and
// prints every table and figure.
//
//	spfail-study -scale 0.05 -seed 1
//
// Scale 1.0 reproduces the paper's full population sizes (~420K domains);
// the default keeps a laptop run in the minutes range.
//
// With -checkpoint the study commits a durable segment after every stage;
// a run killed at any point — including SIGKILL — restarts with the same
// flags plus -resume and produces output byte-identical to an
// uninterrupted run (see docs/checkpoints.md):
//
//	spfail-study -scale 0.05 -checkpoint /tmp/ckpt
//	spfail-study -scale 0.05 -checkpoint /tmp/ckpt -resume
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"spfail/cmd/internal/cliflags"
	"spfail/internal/checkpoint"
	"spfail/internal/clock"
	"spfail/internal/faults"
	"spfail/internal/measure"
	"spfail/internal/obs"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/retry"
	"spfail/internal/study"
	"spfail/internal/telemetry"
)

func main() {
	def := measure.DefaultConfig()
	var (
		scale       = flag.Float64("scale", 0.02, "population scale relative to the paper")
		concurrency = flag.Int("concurrency", def.Concurrency, "max concurrent SMTP probes")
		batch       = flag.Int("batch", def.BatchSize, "simulated hosts brought up per wave")
		interval    = flag.Duration("interval", 48*time.Hour, "longitudinal cadence (virtual)")
		ioTimeout   = flag.Duration("io-timeout", 5*time.Second, "per-probe SMTP I/O timeout (spent in real time; shrink it under fault plans)")
		faultsName  = flag.String("faults", "none", "fault-injection preset: "+strings.Join(faults.PresetNames, "|"))
		breakerN    = flag.Int("breaker", 0, "consecutive failures that open a per-address circuit breaker (0 disables)")
		ckptDir     = flag.String("checkpoint", "", "durable checkpoint store directory: commit a segment after every stage (see docs/checkpoints.md)")
		resume      = flag.Bool("resume", false, "resume an interrupted run from the -checkpoint store (same flags required)")
		killAfter   = flag.String("kill-after", "", "testing: SIGKILL this process right after the named segment commits, e.g. round-002 (requires -checkpoint)")
		csvDir      = flag.String("csv", "", "directory to write figure data as CSV (optional)")
		memBudget   = flag.String("mem-budget", "", "soft RSS budget, e.g. 512MiB: above it the run degrades (smaller batches, forced GC) and heap profiles land in the -checkpoint dir")
		memHard     = flag.String("mem-budget-hard", "", "hard RSS limit, e.g. 2GiB: above it the run stops with an error instead of an OOM kill")
		verbose     = flag.Bool("v", true, "print progress to stderr")
		metricsOut  = flag.String("metrics-out", "", "write the JSON telemetry snapshot to this file (implies -metrics)")
		scenarios   = flag.String("scenarios", "", "misconfiguration scenario mix, e.g. plus-all:0.1,dangling-include:0.05 (packs: "+strings.Join(population.PackNames(), "|")+")")
	)
	common := cliflags.Register(flag.CommandLine, cliflags.Options{
		SeedDefault:  1,
		SeedUsage:    "world generation seed",
		MetricsUsage: "periodic telemetry progress lines and a JSON snapshot at exit (stderr)",
	})
	flag.Parse()
	if *metricsOut != "" {
		common.Metrics = true
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "spfail-study: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *killAfter != "" && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "spfail-study: -kill-after requires -checkpoint")
		os.Exit(2)
	}

	spec := population.DefaultSpec()
	spec.Scale = *scale
	spec.Seed = common.Seed
	if *scenarios != "" {
		refs, err := population.ParseScenarioRefs(*scenarios)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: -scenarios: %v\n", err)
			os.Exit(2)
		}
		spec.Scenarios = refs
	}

	plan, err := faults.Preset(*faultsName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
		os.Exit(2)
	}

	cfg := study.Config{
		Config: measure.Config{
			Concurrency: *concurrency,
			BatchSize:   *batch,
			IOTimeout:   *ioTimeout,
		},
		Spec:          spec,
		Interval:      *interval,
		CheckpointDir: *ckptDir,
		Resume:        *resume,
	}
	if !plan.Empty() {
		cfg.Faults = &plan
	}
	for _, b := range []struct {
		flag string
		val  string
		dst  *int64
	}{
		{"-mem-budget", *memBudget, &cfg.Budget.SoftRSS},
		{"-mem-budget-hard", *memHard, &cfg.Budget.HardRSS},
	} {
		if b.val == "" {
			continue
		}
		n, err := obs.ParseBytes(b.val)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "spfail-study: %s: bad size %q\n", b.flag, b.val)
			os.Exit(2)
		}
		*b.dst = n
	}
	if p := common.RetryPolicy(); p.MaxAttempts > 1 {
		cfg.Retry = p
		cfg.DNSRetry = p
	}
	if *breakerN > 0 {
		cfg.Breaker = retry.BreakerConfig{Threshold: *breakerN}
	}
	if *killAfter != "" {
		point := "commit:" + *killAfter
		cfg.Kill = func(p string) bool {
			if p != point {
				return false
			}
			fmt.Fprintf(os.Stderr, "spfail-study: -kill-after: %s committed, sending SIGKILL\n", *killAfter)
			proc, err := os.FindProcess(os.Getpid())
			if err == nil {
				_ = proc.Kill()
			}
			// SIGKILL delivery is asynchronous; never resume the study.
			select {}
		}
	}
	// flushTrace runs explicitly before the trace-error check rather than
	// as a defer, so the buffered JSONL reaches disk (and surfaces write
	// errors) even though later failure paths leave through os.Exit.
	tracer, flushTrace, err := common.OpenTrace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
		os.Exit(2)
	}
	cfg.Trace = tracer
	if *verbose {
		clk := clock.Real{}
		start := clk.Now()
		cfg.Progress = func(stage string) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", clk.Now().Sub(start).Seconds(), stage)
		}
	}

	var stopProgress func()
	if common.Metrics {
		cfg.Metrics = telemetry.New()
		stopProgress = progressLoop(cfg.Metrics, 5*time.Second)
	}
	if common.Listen != "" {
		if cfg.Metrics == nil {
			cfg.Metrics = telemetry.New()
		}
		stop := serveObservability(common, &cfg)
		defer stop()
	}

	res, err := study.Run(context.Background(), cfg)
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
		os.Exit(1)
	}
	if common.Metrics {
		if err := writeMetrics(*metricsOut, res.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if err := cfg.Trace.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: writing trace: %v\n", err)
		os.Exit(1)
	}
	if err := flushTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: writing trace: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "SPFail reproduction — scale %.3f, seed %d\n", *scale, common.Seed)
	fmt.Fprintf(w, "domains: %s   addresses: %s   initially vulnerable: %s addrs / %s domains\n\n",
		report.Count(len(res.World.Domains)),
		report.Count(len(res.World.Hosts)),
		report.Count(len(res.VulnAddrs)),
		report.Count(len(res.VulnDomains)))
	report.All(w, res)

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: writing CSVs: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figure data written to %s\n", *csvDir)
	}
	if *verbose {
		// Diagnostics only, and run-dependent — stderr, never the report.
		fmt.Fprintln(os.Stderr)
		report.ResourceTable(os.Stderr, res)
	}
}

// serveObservability starts the live endpoint (-listen): Prometheus-text
// /metrics from the study's registry, /healthz with campaign stage,
// progress, and durable checkpoint position, and net/http/pprof. It
// hooks cfg.Progress and the campaign batch events to keep the health
// view current; when a checkpoint store is configured, each /healthz
// request opens a snapshot-isolated checkpoint.Reader so the reported
// position reflects only durably committed segments.
func serveObservability(common *cliflags.Common, cfg *study.Config) (stop func()) {
	var mu sync.Mutex
	h := telemetry.Health{OK: true, Stage: "starting"}
	cfg.Metrics.OnEvent(func(ev telemetry.Event) {
		if ev.Name != "campaign.batch" {
			return
		}
		done, _ := ev.Fields["done"].(int)
		total, _ := ev.Fields["total"].(int)
		mu.Lock()
		h.Probed, h.Total = done, total
		if done == total && total > 0 {
			// One full pass over the target set = one campaign round.
			h.Round++
		}
		mu.Unlock()
	})
	prev := cfg.Progress
	cfg.Progress = func(stage string) {
		mu.Lock()
		h.Stage = stage
		mu.Unlock()
		if prev != nil {
			prev(stage)
		}
	}
	reg, dir := cfg.Metrics, cfg.CheckpointDir
	return common.Serve("spfail-study", reg, func() telemetry.Health {
		mu.Lock()
		cur := h
		mu.Unlock()
		if dir != "" {
			if r, err := checkpoint.OpenReader(dir, reg); err == nil {
				p := r.Progress()
				cur.CheckpointSegments = p.Segments
				cur.CheckpointRounds = p.Rounds
			}
		}
		return cur
	})
}

// progressLoop prints one telemetry line per tick (wall time; the study
// itself runs on a virtual clock) until the returned stop function runs.
func progressLoop(reg *telemetry.Registry, every time.Duration) (stop func()) {
	done := make(chan struct{})
	clk := clock.Real{}
	go func() {
		for {
			select {
			case <-done:
				return
			case <-clk.After(every):
				s := reg.Snapshot()
				lat := s.Histograms["probe.latency"]
				fmt.Fprintf(os.Stderr,
					"[metrics] probes=%d batches=%d inflight=%d (max %d) dns_queries=%d smtp_sessions=%d greylist_waits=%d probe_lat(p50/p95/p99)=%.3fs/%.3fs/%.3fs heap=%s rss=%s gc=%d goroutines=%d\n",
					s.Counters["probe.total"],
					s.Counters["campaign.batches_done"],
					s.Gauges["campaign.inflight"].Value,
					s.Gauges["campaign.inflight"].Max,
					s.Counters["dns.server.queries"],
					s.Counters["smtp.client.sessions"],
					s.Counters["probe.greylist_waits"],
					lat.P50Seconds, lat.P95Seconds, lat.P99Seconds,
					report.Bytes(s.Gauges["runtime.heap.live_bytes"].Value),
					report.Bytes(s.Gauges["runtime.mem.rss_bytes"].Value),
					s.Counters["runtime.gc.cycles"],
					s.Gauges["runtime.sched.goroutines"].Value)
			}
		}
	}()
	return func() { close(done) }
}

// writeMetrics dumps the final JSON snapshot to path, or stderr when path
// is empty.
func writeMetrics(path string, reg *telemetry.Registry) error {
	w := os.Stderr
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return reg.Snapshot().WriteJSON(w)
}

// writeCSVs exports the figures' underlying data for external plotting.
func writeCSVs(dir string, res *study.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(dir + "/" + name)
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	series := map[string]population.Set{
		"fig5_all_domains.csv":   0,
		"fig7_alexa_toplist.csv": population.SetAlexaTopList,
		"fig7_2week_mx.csv":      population.SetTwoWeekMX,
		"fig8_alexa_1000.csv":    population.SetAlexa1000,
	}
	for name, set := range series {
		set := set
		if err := write(name, func(f *os.File) error {
			return report.SeriesCSV(f, study.SetSeries(res, set))
		}); err != nil {
			return err
		}
	}
	if len(res.ScenarioStats) > 0 {
		if err := write("scenarios.csv", func(f *os.File) error {
			return report.ScenarioCSV(f, res.ScenarioStats)
		}); err != nil {
			return err
		}
	}
	return write("fig3_choropleth.csv", func(f *os.File) error {
		buckets, _ := study.Figure3(res, 5)
		return report.ChoroplethCSV(f, buckets)
	})
}
