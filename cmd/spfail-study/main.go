// Command spfail-study regenerates the paper's complete evaluation: it
// builds the synthetic Internet, runs the October-to-February measurement
// campaign on a virtual clock, performs the notification mailing, and
// prints every table and figure.
//
//	spfail-study -scale 0.05 -seed 1
//
// Scale 1.0 reproduces the paper's full population sizes (~420K domains);
// the default keeps a laptop run in the minutes range.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"strings"
	"sync"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/faults"
	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/retry"
	"spfail/internal/study"
	"spfail/internal/telemetry"
	"spfail/internal/trace"
)

func main() {
	def := measure.DefaultConfig()
	var (
		scale       = flag.Float64("scale", 0.02, "population scale relative to the paper")
		seed        = flag.Int64("seed", 1, "world generation seed")
		concurrency = flag.Int("concurrency", def.Concurrency, "max concurrent SMTP probes")
		batch       = flag.Int("batch", def.BatchSize, "simulated hosts brought up per wave")
		interval    = flag.Duration("interval", 48*time.Hour, "longitudinal cadence (virtual)")
		ioTimeout   = flag.Duration("io-timeout", 5*time.Second, "per-probe SMTP I/O timeout (spent in real time; shrink it under fault plans)")
		faultsName  = flag.String("faults", "none", "fault-injection preset: "+strings.Join(faults.PresetNames, "|"))
		retries     = flag.Int("retries", 1, "attempts per transiently-failed probe (1 disables retries)")
		retryBase   = flag.Duration("retry-base", 2*time.Second, "backoff before the first probe retry (virtual time)")
		breakerN    = flag.Int("breaker", 0, "consecutive failures that open a per-address circuit breaker (0 disables)")
		checkpoint  = flag.String("checkpoint", "", "stream per-probe outcomes to this CSV file as they complete")
		csvDir      = flag.String("csv", "", "directory to write figure data as CSV (optional)")
		verbose     = flag.Bool("v", true, "print progress to stderr")
		metrics     = flag.Bool("metrics", false, "periodic telemetry progress lines and a JSON snapshot at exit (stderr)")
		metricsOut  = flag.String("metrics-out", "", "write the JSON telemetry snapshot to this file (implies -metrics)")
		traceOut    = flag.String("trace", "", "write per-probe causal spans to this JSONL file (read with spfail-trace; see docs/tracing.md)")
		traceSample = flag.Float64("trace-sample", 1, "fraction of probes traced, decided deterministically per probe index")
		scenarios   = flag.String("scenarios", "", "misconfiguration scenario mix, e.g. plus-all:0.1,dangling-include:0.05 (packs: "+strings.Join(population.PackNames(), "|")+")")
		listen      = flag.String("listen", "", "serve live /metrics (Prometheus text), /healthz, and /debug/pprof on this address, e.g. :8089")
	)
	flag.Parse()
	if *metricsOut != "" {
		*metrics = true
	}

	spec := population.DefaultSpec()
	spec.Scale = *scale
	spec.Seed = *seed
	if *scenarios != "" {
		refs, err := population.ParseScenarioRefs(*scenarios)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: -scenarios: %v\n", err)
			os.Exit(2)
		}
		spec.Scenarios = refs
	}

	plan, err := faults.Preset(*faultsName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
		os.Exit(2)
	}

	cfg := study.Config{
		Spec:        spec,
		Concurrency: *concurrency,
		BatchSize:   *batch,
		Interval:    *interval,
		IOTimeout:   *ioTimeout,
	}
	if !plan.Empty() {
		cfg.Faults = &plan
	}
	if *retries > 1 {
		cfg.Retry = retry.Policy{
			MaxAttempts: *retries,
			BaseDelay:   *retryBase,
			MaxDelay:    16 * *retryBase,
			Jitter:      0.2,
		}
		cfg.DNSRetry = cfg.Retry
	}
	if *breakerN > 0 {
		cfg.Breaker = retry.BreakerConfig{Threshold: *breakerN}
	}
	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		cw := bufio.NewWriter(f)
		defer cw.Flush()
		ow := report.NewOutcomeWriter(cw)
		defer ow.Flush()
		cfg.Observe = func(suite string, addr netip.Addr, out core.Outcome) {
			if err := ow.Write(suite, addr, out); err != nil {
				fmt.Fprintf(os.Stderr, "spfail-study: checkpoint: %v\n", err)
				os.Exit(1)
			}
		}
	}
	// flushTrace runs explicitly before the trace-error check rather than
	// as a defer, so the buffered JSONL reaches disk (and surfaces write
	// errors) even though later failure paths leave through os.Exit.
	flushTrace := func() error { return nil }
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
			os.Exit(2)
		}
		tw := bufio.NewWriter(f)
		flushTrace = func() error {
			if err := tw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
		cfg.Trace = trace.New(tw, trace.Options{Seed: *seed, Sample: *traceSample})
	}
	if *verbose {
		clk := clock.Real{}
		start := clk.Now()
		cfg.Progress = func(stage string) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", clk.Now().Sub(start).Seconds(), stage)
		}
	}

	var stopProgress func()
	if *metrics {
		cfg.Metrics = telemetry.New()
		stopProgress = progressLoop(cfg.Metrics, 5*time.Second)
	}
	if *listen != "" {
		if cfg.Metrics == nil {
			cfg.Metrics = telemetry.New()
		}
		stop := serveObservability(*listen, &cfg)
		defer stop()
	}

	res, err := study.Run(context.Background(), cfg)
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: %v\n", err)
		os.Exit(1)
	}
	if *metrics {
		if err := writeMetrics(*metricsOut, res.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if err := cfg.Trace.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: writing trace: %v\n", err)
		os.Exit(1)
	}
	if err := flushTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "spfail-study: writing trace: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "SPFail reproduction — scale %.3f, seed %d\n", *scale, *seed)
	fmt.Fprintf(w, "domains: %s   addresses: %s   initially vulnerable: %s addrs / %s domains\n\n",
		report.Count(len(res.World.Domains)),
		report.Count(len(res.World.Hosts)),
		report.Count(len(res.VulnAddrs)),
		report.Count(len(res.VulnDomains)))
	report.All(w, res)

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "spfail-study: writing CSVs: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figure data written to %s\n", *csvDir)
	}
}

// serveObservability starts the live endpoint (-listen): Prometheus-text
// /metrics from the study's registry, /healthz with campaign stage and
// progress, and net/http/pprof. It hooks cfg.Progress and the campaign
// batch events to keep the health view current, and returns a stop
// function for shutdown.
func serveObservability(addr string, cfg *study.Config) (stop func()) {
	var mu sync.Mutex
	h := telemetry.Health{OK: true, Stage: "starting"}
	cfg.Metrics.OnEvent(func(ev telemetry.Event) {
		if ev.Name != "campaign.batch" {
			return
		}
		done, _ := ev.Fields["done"].(int)
		total, _ := ev.Fields["total"].(int)
		mu.Lock()
		h.Probed, h.Total = done, total
		if done == total && total > 0 {
			// One full pass over the target set = one campaign round.
			h.Round++
		}
		mu.Unlock()
	})
	prev := cfg.Progress
	cfg.Progress = func(stage string) {
		mu.Lock()
		h.Stage = stage
		mu.Unlock()
		if prev != nil {
			prev(stage)
		}
	}
	srv := &http.Server{Addr: addr, Handler: telemetry.HTTPHandler(cfg.Metrics, func() telemetry.Health {
		mu.Lock()
		defer mu.Unlock()
		return h
	})}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "spfail-study: -listen: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "observability endpoint on %s (/metrics, /healthz, /debug/pprof)\n", addr)
	return func() { srv.Close() }
}

// progressLoop prints one telemetry line per tick (wall time; the study
// itself runs on a virtual clock) until the returned stop function runs.
func progressLoop(reg *telemetry.Registry, every time.Duration) (stop func()) {
	done := make(chan struct{})
	clk := clock.Real{}
	go func() {
		for {
			select {
			case <-done:
				return
			case <-clk.After(every):
				s := reg.Snapshot()
				lat := s.Histograms["probe.latency"]
				fmt.Fprintf(os.Stderr,
					"[metrics] probes=%d batches=%d inflight=%d (max %d) dns_queries=%d smtp_sessions=%d greylist_waits=%d probe_lat(p50/p95/p99)=%.3fs/%.3fs/%.3fs\n",
					s.Counters["probe.total"],
					s.Counters["campaign.batches_done"],
					s.Gauges["campaign.inflight"].Value,
					s.Gauges["campaign.inflight"].Max,
					s.Counters["dns.server.queries"],
					s.Counters["smtp.client.sessions"],
					s.Counters["probe.greylist_waits"],
					lat.P50Seconds, lat.P95Seconds, lat.P99Seconds)
			}
		}
	}()
	return func() { close(done) }
}

// writeMetrics dumps the final JSON snapshot to path, or stderr when path
// is empty.
func writeMetrics(path string, reg *telemetry.Registry) error {
	w := os.Stderr
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return reg.Snapshot().WriteJSON(w)
}

// writeCSVs exports the figures' underlying data for external plotting.
func writeCSVs(dir string, res *study.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(dir + "/" + name)
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	series := map[string]population.Set{
		"fig5_all_domains.csv":   0,
		"fig7_alexa_toplist.csv": population.SetAlexaTopList,
		"fig7_2week_mx.csv":      population.SetTwoWeekMX,
		"fig8_alexa_1000.csv":    population.SetAlexa1000,
	}
	for name, set := range series {
		set := set
		if err := write(name, func(f *os.File) error {
			return report.SeriesCSV(f, study.SetSeries(res, set))
		}); err != nil {
			return err
		}
	}
	if len(res.ScenarioStats) > 0 {
		if err := write("scenarios.csv", func(f *os.File) error {
			return report.ScenarioCSV(f, res.ScenarioStats)
		}); err != nil {
			return err
		}
	}
	return write("fig3_choropleth.csv", func(f *os.File) error {
		buckets, _ := study.Figure3(res, 5)
		return report.ChoroplethCSV(f, buckets)
	})
}
