// Command spfcheck evaluates SPF policies from the command line.
//
// Evaluate an inline record:
//
//	spfcheck -ip 192.0.2.1 -from user@example.com \
//	    -record "v=spf1 ip4:192.0.2.0/24 -all"
//
// Evaluate against a DNS server (the domain's policy is fetched live):
//
//	spfcheck -ip 192.0.2.1 -from user@example.com -server 127.0.0.1:53
//
// Show how every modeled SPF implementation behaviour (including the
// vulnerable libSPF2) would expand a macro-string:
//
//	spfcheck -expand "%{d1r}.foo.com" -from user@example.com
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"spfail/internal/dnsclient"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/spf"
	"spfail/internal/spfimpl"
)

func main() {
	var (
		ipStr   = flag.String("ip", "192.0.2.1", "SMTP client IP address")
		from    = flag.String("from", "", "MAIL FROM address (user@domain)")
		helo    = flag.String("helo", "mail.example.com", "HELO/EHLO identity")
		domain  = flag.String("domain", "", "domain to check (default: domain of -from)")
		record  = flag.String("record", "", "inline SPF record to evaluate instead of DNS")
		server  = flag.String("server", "", "DNS server address (ip:port) for live lookups")
		expand  = flag.String("expand", "", "macro-string: show every behaviour's expansion and exit")
		timeout = flag.Duration("timeout", 5*time.Second, "DNS timeout")
	)
	flag.Parse()

	if *from == "" && *expand == "" {
		fmt.Fprintln(os.Stderr, "spfcheck: -from is required (see -h)")
		os.Exit(2)
	}
	ip, err := netip.ParseAddr(*ipStr)
	if err != nil {
		fatal("bad -ip: %v", err)
	}
	dom := *domain
	if dom == "" && *from != "" {
		if i := strings.LastIndexByte(*from, '@'); i >= 0 {
			dom = (*from)[i+1:]
		}
	}

	if *expand != "" {
		env := &spf.MacroEnv{Sender: *from, Domain: dom, IP: ip, HELO: *helo}
		fmt.Printf("expansions of %q for sender %q:\n", *expand, *from)
		for _, b := range spfimpl.AllBehaviors() {
			out, err := spfimpl.ExpanderFor(b).Expand(context.Background(), *expand, env, false)
			if err != nil {
				out = "error: " + err.Error()
			}
			fmt.Printf("  %-20s %s\n", b, out)
		}
		return
	}

	var resolver spf.Resolver
	switch {
	case *record != "":
		resolver = inlineResolver{domain: dom, record: *record}
	case *server != "":
		r := dnsclient.NewResolver(&dnsclient.Client{
			Net:     netsim.Real{},
			Server:  *server,
			Timeout: *timeout,
		})
		resolver = mta.ResolverAdapter{R: r}
	default:
		fatal("one of -record or -server is required")
	}

	c := &spf.Checker{Resolver: resolver}
	res := c.CheckHost(context.Background(), ip, dom, *from, *helo)
	fmt.Printf("result:    %s\n", res.Result)
	if res.Mechanism != "" {
		fmt.Printf("mechanism: %s\n", res.Mechanism)
	}
	if res.Explanation != "" {
		fmt.Printf("exp:       %s\n", res.Explanation)
	}
	if res.Err != nil {
		fmt.Printf("detail:    %v\n", res.Err)
	}
	if res.Result == spf.ResultFail || res.Result == spf.ResultPermError {
		os.Exit(1)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "spfcheck: "+format+"\n", args...)
	os.Exit(2)
}

// inlineResolver serves exactly one TXT record for one domain.
type inlineResolver struct {
	domain string
	record string
}

func (r inlineResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if strings.EqualFold(strings.TrimSuffix(name, "."), strings.TrimSuffix(r.domain, ".")) {
		return []string{r.record}, nil
	}
	return nil, spf.ErrNotFound
}

func (r inlineResolver) LookupIP(context.Context, string, string) ([]netip.Addr, error) {
	return nil, spf.ErrNotFound
}

func (r inlineResolver) LookupMX(context.Context, string) ([]spf.MX, error) {
	return nil, spf.ErrNotFound
}

func (r inlineResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}
