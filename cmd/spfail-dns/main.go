// Command spfail-dns runs the SPFail measurement DNS zone on a real
// socket: the dynamic authoritative server that synthesizes per-probe SPF
// policies (v=spf1 a:%{d1r}.<id>.<suite>.<base> ...) and logs every query
// it receives, printing fingerprint-relevant ones to stdout.
//
//	spfail-dns -listen 0.0.0.0:5353 -base spf-test.dns-lab.org
//
// In a lab deployment, delegate <base> to the machine running this server,
// then point spfail-scan at the mail servers to be tested.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"

	"spfail/internal/clock"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/netsim"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:5353", "UDP+TCP listen address")
		base     = flag.String("base", "spf-test.dns-lab.org", "zone apex under our control")
		addr4    = flag.String("addr4", "192.0.2.25", "A record served for names under the zone")
		addr6    = flag.String("addr6", "", "AAAA record served (optional)")
		zoneFile = flag.String("zone", "", "optional RFC 1035 master file with additional records to serve")
		quiet    = flag.Bool("quiet", false, "suppress per-query output")
	)
	flag.Parse()

	baseName, err := dnsmsg.ParseName(*base)
	if err != nil {
		fatal("bad -base: %v", err)
	}
	a4, err := netip.ParseAddr(*addr4)
	if err != nil {
		fatal("bad -addr4: %v", err)
	}
	zone := &dnsserver.SPFTestZone{Base: baseName, Addr4: a4}
	if *addr6 != "" {
		a6, err := netip.ParseAddr(*addr6)
		if err != nil {
			fatal("bad -addr6: %v", err)
		}
		zone.Addr6 = a6
	}

	// Static records (if any) serve everything outside the test zone.
	var inner dnsserver.Handler = zone
	if *zoneFile != "" {
		data, err := os.ReadFile(*zoneFile)
		if err != nil {
			fatal("reading -zone: %v", err)
		}
		static, err := dnsserver.ParseZoneString(string(data))
		if err != nil {
			fatal("%v", err)
		}
		mux := dnsserver.NewMux(static)
		mux.Handle(baseName, zone)
		inner = mux
	}

	log := &dnsserver.QueryLog{}
	if !*quiet {
		log.AddSink(printSink{zone: zone})
	}
	handler := &dnsserver.LoggingHandler{Inner: inner, Sink: log, Now: clock.Real{}.Now}
	srv := &dnsserver.Server{Net: netsim.Real{}, Addr: *listen, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := srv.Start(ctx); err != nil {
		fatal("start: %v", err)
	}
	fmt.Printf("spfail-dns: serving %s on %s (policy: %s)\n",
		baseName, *listen, zone.PolicyFor(dnsmsg.MustParseName("ID.SUITE."+*base)))
	<-ctx.Done()
	srv.Stop()
	fmt.Printf("spfail-dns: %d queries observed\n", log.Len())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "spfail-dns: "+format+"\n", args...)
	os.Exit(2)
}

// printSink writes each in-zone query to stdout, flagging the probe id it
// belongs to.
type printSink struct {
	zone *dnsserver.SPFTestZone
}

func (s printSink) Observe(ev dnsserver.QueryEvent) {
	id, suite, ok := s.zone.ExtractIDSuite(ev.Name)
	tag := ""
	if ok {
		tag = fmt.Sprintf("  [id=%s suite=%s]", id, suite)
	}
	fmt.Printf("%s  %-40s %-5s from %s%s\n",
		ev.Time.Format("15:04:05.000"), ev.Name, ev.Type, ev.From, tag)
}
