package spfail

// The benchmark harness regenerates every table and figure of the paper
// (run with `go test -bench=. -benchmem`). Each BenchmarkTableN /
// BenchmarkFigureN logs the reproduced rows (visible with -v) and reports
// the headline metric the paper states, so shape comparisons are
// mechanical. The Ablation benchmarks quantify the design choices called
// out in DESIGN.md. Micro-benchmarks at the bottom measure the hot paths
// of the core library itself.

import (
	"bytes"
	"context"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/measure"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/population"
	"spfail/internal/report"
	"spfail/internal/spf"
	"spfail/internal/spfimpl"
	"spfail/internal/study"
)

// benchScale keeps the shared study fast enough for iterative benching
// while large enough for stable shares.
const benchScale = 0.01

var (
	studyOnce    sync.Once
	studyResults *study.Results
	studyErr     error
)

// benchStudy runs (once) the full end-to-end study the table/figure
// benchmarks extract from.
func benchStudy(b *testing.B) *study.Results {
	b.Helper()
	studyOnce.Do(func() {
		spec := population.DefaultSpec()
		spec.Scale = benchScale
		spec.Seed = 1
		studyResults, studyErr = study.Run(context.Background(), study.Config{
			Config: measure.Config{Concurrency: 128, BatchSize: 1000},
			Spec:   spec,
		})
	})
	if studyErr != nil {
		b.Fatalf("study: %v", studyErr)
	}
	return studyResults
}

// logOnce renders a table/figure into the benchmark log on the first
// iteration only.
func logOnce(b *testing.B, render func(buf *bytes.Buffer)) {
	var buf bytes.Buffer
	render(&buf)
	b.Log("\n" + buf.String())
}

// BenchmarkTable1Overlap regenerates the domain-set overlap matrix
// (paper: 22,911 / 1,000 / 418,842 diagonal; 2,922 and 135 overlaps).
func BenchmarkTable1Overlap(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Table1(buf, r.World) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := study.Table1(r.World)
		if len(cells) != 9 {
			b.Fatal("bad matrix")
		}
	}
}

// BenchmarkTable2TLDs regenerates the TLD frequency table (paper: com
// dominates both sets).
func BenchmarkTable2TLDs(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Table2(buf, r.World, 15) })
	var comShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := study.Table2(r.World, population.SetAlexaTopList, 15)
		total := len(r.World.DomainsIn(population.SetAlexaTopList))
		comShare = float64(rows[0].Count) / float64(total)
	}
	b.ReportMetric(comShare, "com-share")
}

// BenchmarkTable3Funnel regenerates the probe outcome funnel (paper
// Alexa: 47% refused; 37% SMTP failure of connected; 13%/58% measured at
// the NoMsg/BlankMsg rungs).
func BenchmarkTable3Funnel(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) {
		report.Table3(buf, r, population.SetAlexaTopList, population.SetTwoWeekMX, population.SetTopProviders)
	})
	var refused float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := study.Table3(r, population.SetAlexaTopList)
		refused = float64(f.AddrRefused) / float64(f.Addresses)
	}
	b.ReportMetric(refused, "refused-frac")
}

// BenchmarkTable4Initial regenerates the initial vulnerability breakdown
// (paper: ~1 in 6 measured IPs vulnerable overall; 1 in 10 for 2-Week MX).
func BenchmarkTable4Initial(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Table4(buf, r) })
	var vulnShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd := study.Table4(r, 0)
		vulnShare = float64(bd.Vulnerable) / float64(bd.Measured)
	}
	b.ReportMetric(vulnShare, "vuln-share")
}

// BenchmarkTable5TLDPatch regenerates per-TLD patch rates (paper: za 79%
// … ru 2%, tw 0%; com 15%).
func BenchmarkTable5TLDPatch(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Table5(buf, r, 3, 5) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := study.Table5(r, 1)
		if len(rows) == 0 {
			b.Fatal("no TLD rows")
		}
	}
}

// BenchmarkTable6PkgMgr regenerates the package-manager patch timeline
// (static ground truth; matches the paper exactly).
func BenchmarkTable6PkgMgr(b *testing.B) {
	logOnce(b, func(buf *bytes.Buffer) { report.Table6(buf) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := study.Table6()
		if len(rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable7Behaviors regenerates the macro-expansion behaviour
// taxonomy (paper: ~6% of measurable IPs show ≥2 patterns).
func BenchmarkTable7Behaviors(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Table7(buf, r) })
	var multiShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t7 := study.Table7(r)
		multiShare = float64(t7.MultiplePatterns) / float64(t7.TotalMeasured)
	}
	b.ReportMetric(multiShare, "multi-pattern-share")
}

// BenchmarkFigure2FinalSplit regenerates the final
// patched/vulnerable/unknown split (paper: ~15% patched overall; Alexa
// 1000 <10%).
func BenchmarkFigure2FinalSplit(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Figure2(buf, r) })
	var patchedShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := study.Figure2(r)
		all := rows[len(rows)-1]
		total := all.Patched + all.Vulnerable + all.Unknown
		if total > 0 {
			patchedShare = float64(all.Patched) / float64(total)
		}
	}
	b.ReportMetric(patchedShare, "patched-share")
}

// BenchmarkFigure3Geo regenerates the geographic aggregation (paper:
// vulnerable hosts worldwide, Europe slightly denser; za patches most).
func BenchmarkFigure3Geo(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Figure3(buf, r, 15) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets, countries := study.Figure3(r, 5)
		if len(buckets) == 0 || len(countries) == 0 {
			b.Fatal("empty geo aggregation")
		}
	}
}

// BenchmarkFigure4RankBuckets regenerates vulnerability by site rank
// (paper: bottom 20K ranks ≈ 2× the vulnerable servers of the top 20K).
func BenchmarkFigure4RankBuckets(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Figure4(buf, r, population.SetAlexaTopList) })
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := study.Figure4(r, population.SetAlexaTopList, 20)
		top := buckets[0].Vulnerable + buckets[1].Vulnerable + buckets[2].Vulnerable + buckets[3].Vulnerable
		n := len(buckets)
		bottom := buckets[n-1].Vulnerable + buckets[n-2].Vulnerable + buckets[n-3].Vulnerable + buckets[n-4].Vulnerable
		if top > 0 {
			ratio = float64(bottom) / float64(top)
		}
	}
	b.ReportMetric(ratio, "bottom/top-vuln-ratio")
}

// BenchmarkFigure5Conclusive regenerates the conclusiveness series
// (paper: fluctuates, stabilizes late November).
func BenchmarkFigure5Conclusive(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) {
		report.FigureSeries(buf, "Figure 5", study.SetSeries(r, 0))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := study.SetSeries(r, 0)
		if len(s) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFigure6Window1 regenerates the first-window vulnerability
// rates (paper: 2-Week MX −10%, Alexa −4% before any disclosure).
func BenchmarkFigure6Window1(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) {
		report.FigureSeries(buf, "Figure 6 (2-Week MX, window 1)",
			study.WindowSeries(study.SetSeries(r, population.SetTwoWeekMX), population.TLongitudinal, population.TPause))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := study.WindowSeries(study.SetSeries(r, population.SetAlexaTopList), population.TLongitudinal, population.TPause)
		if len(s) == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkFigure7FullSeries regenerates the full-period vulnerability
// rates (paper: sharp drop right after the Jan 19 disclosure; >80% still
// vulnerable at the end).
func BenchmarkFigure7FullSeries(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) {
		report.FigureSeries(buf, "Figure 7 (Alexa Top List)", study.SetSeries(r, population.SetAlexaTopList))
	})
	var finalRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := study.SetSeries(r, 0)
		finalRate = s[len(s)-1].VulnerableRate()
	}
	b.ReportMetric(finalRate, "final-vuln-rate")
}

// BenchmarkFigure8Alexa1000 regenerates the Alexa Top 1000 conclusiveness
// series (paper: 28 domains; conclusive results collapse mid-November).
func BenchmarkFigure8Alexa1000(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) {
		report.FigureSeries(buf, "Figure 8 (Alexa Top 1000)", study.SetSeries(r, population.SetAlexa1000))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := study.SetSeries(r, population.SetAlexa1000)
		if len(s) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkNotificationFunnel regenerates the §7.7 funnel (paper: 6,488
// sent, 31.6% bounced, 12% opened, 9 patched between disclosures).
func BenchmarkNotificationFunnel(b *testing.B) {
	r := benchStudy(b)
	logOnce(b, func(buf *bytes.Buffer) { report.Notification(buf, r) })
	var bounceRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := r.Notification
		if n.Sent > 0 {
			bounceRate = float64(n.Bounced) / float64(n.Sent)
		}
	}
	b.ReportMetric(bounceRate, "bounce-rate")
}

// ---- Ablation benches (design choices from DESIGN.md) ----

// BenchmarkAblationProbeLadder quantifies what the BlankMsg escalation
// adds over NoMsg alone: the fraction of measured servers that only the
// second rung reached.
func BenchmarkAblationProbeLadder(b *testing.B) {
	r := benchStudy(b)
	var added float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		noMsg, blank := 0, 0
		for _, o := range r.Initial {
			if o.Status != core.StatusSPFMeasured {
				continue
			}
			if o.Method == core.MethodNoMsg {
				noMsg++
			} else {
				blank++
			}
		}
		if noMsg+blank > 0 {
			added = float64(blank) / float64(noMsg+blank)
		}
	}
	b.ReportMetric(added, "blankmsg-added-share")
}

// BenchmarkAblationLivenessTerm quantifies the macro-free a:b.<id> term:
// hosts whose only evidence is the liveness lookup would be unmeasurable
// without it.
func BenchmarkAblationLivenessTerm(b *testing.B) {
	r := benchStudy(b)
	var saved float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		livenessOnly, measured := 0, 0
		for _, o := range r.Initial {
			if o.Status != core.StatusSPFMeasured {
				continue
			}
			measured++
			if len(o.Observation.Patterns) == 0 && o.Observation.LivenessSeen {
				livenessOnly++
			}
		}
		if measured > 0 {
			saved = float64(livenessOnly) / float64(measured)
		}
	}
	b.ReportMetric(saved, "liveness-only-share")
}

// BenchmarkAblationInference quantifies the §7.6 inference rules: the
// share of domain-rounds concluded only through inference.
func BenchmarkAblationInference(b *testing.B) {
	r := benchStudy(b)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := study.SetSeries(r, 0)
		measured, inferred := 0, 0
		for _, p := range s {
			measured += p.Measured
			inferred += p.Inferred
		}
		if measured > 0 {
			gain = float64(inferred-measured) / float64(measured)
		}
	}
	b.ReportMetric(gain, "inference-gain")
}

// BenchmarkAblationLabels demonstrates why every probe needs a unique
// label: merging the DNS evidence of distinct servers under one shared
// label conflates their fingerprints into multiple contradictory patterns.
func BenchmarkAblationLabels(b *testing.B) {
	fabric := netsim.NewFabric()
	zone := &dnsserver.SPFTestZone{
		Base:  dnsmsg.MustParseName("spf-test.dns-lab.org"),
		Addr4: netip.MustParseAddr("192.0.2.80"),
	}
	collector := core.NewCollector(zone)
	// A full query log keeps the raw evidence after the prober's
	// per-probe cleanup.
	recorder := &dnsserver.QueryLog{}
	recorder.AddSink(collector)
	srv := &dnsserver.Server{
		Net:     fabric.Host("192.0.2.53"),
		Addr:    ":53",
		Handler: &dnsserver.LoggingHandler{Inner: zone, Sink: recorder, Now: time.Now},
	}
	if err := srv.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()

	behaviors := []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2, spfimpl.BehaviorCompliant, spfimpl.BehaviorNoTruncate}
	for i, behavior := range behaviors {
		ip := netip.AddrFrom4([4]byte{203, 0, 113, byte(100 + i)})
		h := mta.New(mta.Config{
			Hostname: "mx", IP: ip, Net: fabric.Host(ip.String()),
			DNSServer: "192.0.2.53:53", DNSTimeout: time.Second,
			Behaviors: []spfimpl.Behavior{behavior}, ValidateAt: mta.ValidateAtMailFrom,
		})
		if err := h.Start(context.Background()); err != nil {
			b.Fatal(err)
		}
		defer h.Stop()
	}
	classifier := core.NewClassifier(zone)
	prober := &core.Prober{
		Net: fabric.Host("198.51.100.9"), HELO: "probe", Clock: clock.Real{},
		Zone: zone, Labels: core.NewLabelAllocator(9), Collector: collector,
		Classifier: classifier, Suite: "abl", IOTimeout: 2 * time.Second,
		GreylistWait: time.Millisecond, ReconnectWait: time.Millisecond,
	}

	var mergedPatterns float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recorder.Reset()
		for j := range behaviors {
			out := prober.TestIP(context.Background(), netip.AddrFrom4([4]byte{203, 0, 113, byte(100 + j)}).String()+":25", "example.com")
			if out.Status != core.StatusSPFMeasured {
				b.Fatalf("host %d not measured: %v", j, out.Err)
			}
		}
		// Shared-label world: every event collapses onto one id.
		const shared = "zzzz"
		var rewritten []dnsserver.QueryEvent
		for _, ev := range recorder.Snapshot() {
			id, suite, ok := zone.ExtractIDSuite(ev.Name)
			if !ok {
				continue
			}
			renamed := strings.ReplaceAll(ev.Name.String(), id+"."+suite+".", shared+".abl.")
			if n, err := dnsmsg.ParseName(renamed); err == nil {
				ev.Name = n
			}
			rewritten = append(rewritten, ev)
		}
		obs := classifier.Classify(shared, "abl", rewritten)
		mergedPatterns = float64(len(obs.Patterns))
	}
	// With unique labels each server yields exactly 1 pattern; sharing a
	// label conflates all three into one ambiguous observation.
	b.ReportMetric(mergedPatterns, "patterns-under-shared-label")
}

// ---- Core-library micro-benchmarks ----

// BenchmarkSPFCheckHost measures a full check_host() evaluation with an
// include and macro expansion against an in-memory resolver.
func BenchmarkSPFCheckHost(b *testing.B) {
	r := &benchResolver{
		txt: map[string][]string{
			"example.com":     {"v=spf1 a mx include:spf.example.net ip4:192.0.2.0/24 exists:%{ir}.rbl.example.org -all"},
			"spf.example.net": {"v=spf1 ip4:198.51.100.0/24 -all"},
		},
		a: map[string][]netip.Addr{
			"example.com": {netip.MustParseAddr("203.0.113.9")},
		},
		mx: map[string][]spf.MX{
			"example.com": {{Preference: 10, Host: "mail.example.com"}},
		},
	}
	c := &spf.Checker{Resolver: r}
	ip := netip.MustParseAddr("192.0.2.55")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := c.CheckHost(context.Background(), ip, "example.com", "user@example.com", "helo.example.com")
		if res.Result != spf.ResultPass {
			b.Fatalf("result = %s", res.Result)
		}
	}
}

// BenchmarkMacroExpansion measures the compliant macro expander on the
// probe macro.
func BenchmarkMacroExpansion(b *testing.B) {
	env := &spf.MacroEnv{
		Sender: "user@x7k2.s01.spf-test.dns-lab.org",
		Domain: "x7k2.s01.spf-test.dns-lab.org",
		IP:     netip.MustParseAddr("198.51.100.9"),
		HELO:   "probe",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := (spf.Expander{}).Expand(context.Background(), "%{d1r}.x7k2.s01.spf-test.dns-lab.org", env, false)
		if err != nil || out == "" {
			b.Fatal(err)
		}
	}
}

// BenchmarkLibSPF2Expansion measures the vulnerable expander producing
// the fingerprint.
func BenchmarkLibSPF2Expansion(b *testing.B) {
	env := &spf.MacroEnv{
		Sender: "user@x7k2.s01.spf-test.dns-lab.org",
		Domain: "x7k2.s01.spf-test.dns-lab.org",
	}
	exp := &spfimpl.LibSPF2Expander{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := exp.Expand(context.Background(), "%{d1r}.t.example", env, false)
		if err != nil || !strings.HasPrefix(out, "org.org.") {
			b.Fatalf("out=%q err=%v", out, err)
		}
	}
}

// BenchmarkDNSMessageRoundTrip measures packing and unpacking a typical
// SPF TXT response.
func BenchmarkDNSMessageRoundTrip(b *testing.B) {
	name := dnsmsg.MustParseName("x7k2.s01.spf-test.dns-lab.org")
	m := dnsmsg.NewQuery(1, name, dnsmsg.TypeTXT).Reply()
	m.Answers = append(m.Answers, dnsmsg.Record{
		Name: name, Class: dnsmsg.ClassIN, TTL: 1,
		Data: dnsmsg.SplitTXT("v=spf1 a:%{d1r}.x7k2.s01.spf-test.dns-lab.org a:b.x7k2.s01.spf-test.dns-lab.org -all"),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := m.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnsmsg.Unpack(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeSingleHost measures one complete NoMsg detection against
// a vulnerable host over the in-memory fabric, DNS round trips included.
func BenchmarkProbeSingleHost(b *testing.B) {
	fabric := netsim.NewFabric()
	zone := &dnsserver.SPFTestZone{
		Base:  dnsmsg.MustParseName("spf-test.dns-lab.org"),
		Addr4: netip.MustParseAddr("192.0.2.80"),
	}
	collector := core.NewCollector(zone)
	srv := &dnsserver.Server{
		Net:     fabric.Host("192.0.2.53"),
		Addr:    ":53",
		Handler: &dnsserver.LoggingHandler{Inner: zone, Sink: collector, Now: time.Now},
	}
	if err := srv.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	h := mta.New(mta.Config{
		Hostname: "mx", IP: netip.MustParseAddr("203.0.113.50"),
		Net: fabric.Host("203.0.113.50"), DNSServer: "192.0.2.53:53",
		DNSTimeout: time.Second,
		Behaviors:  []spfimpl.Behavior{spfimpl.BehaviorVulnLibSPF2},
		ValidateAt: mta.ValidateAtMailFrom,
	})
	if err := h.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer h.Stop()
	prober := &core.Prober{
		Net: fabric.Host("198.51.100.9"), HELO: "probe", Clock: clock.Real{},
		Zone: zone, Labels: core.NewLabelAllocator(3), Collector: collector,
		Classifier: core.NewClassifier(zone), Suite: "bm", IOTimeout: 2 * time.Second,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := prober.TestIP(context.Background(), "203.0.113.50:25", "example.com")
		if !out.Vulnerable() {
			b.Fatalf("not detected: %+v", out)
		}
	}
}

// benchResolver is a minimal in-memory spf.Resolver for micro-benches.
type benchResolver struct {
	txt map[string][]string
	a   map[string][]netip.Addr
	mx  map[string][]spf.MX
}

func (r *benchResolver) key(n string) string { return strings.ToLower(strings.TrimSuffix(n, ".")) }

func (r *benchResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if v, ok := r.txt[r.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (r *benchResolver) LookupIP(_ context.Context, _, name string) ([]netip.Addr, error) {
	if v, ok := r.a[r.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (r *benchResolver) LookupMX(_ context.Context, name string) ([]spf.MX, error) {
	if v, ok := r.mx[r.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (r *benchResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}
