// Quickstart: parse an SPF policy, expand macros, and evaluate
// check_host() against an in-memory resolver — including a demonstration
// of how the vulnerable libSPF2 expands the paper's probe macro.
package main

import (
	"context"
	"fmt"
	"net/netip"
	"strings"

	"spfail/internal/spf"
	"spfail/internal/spfimpl"
)

// memResolver is a tiny in-memory spf.Resolver.
type memResolver struct {
	txt map[string][]string
	a   map[string][]netip.Addr
	mx  map[string][]spf.MX
}

func (m *memResolver) key(s string) string { return strings.ToLower(strings.TrimSuffix(s, ".")) }

func (m *memResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if v, ok := m.txt[m.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (m *memResolver) LookupIP(_ context.Context, network, name string) ([]netip.Addr, error) {
	if v, ok := m.a[m.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (m *memResolver) LookupMX(_ context.Context, name string) ([]spf.MX, error) {
	if v, ok := m.mx[m.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (m *memResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}

func main() {
	// 1. Parse the example policy from the paper's §2.2.
	policy := "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all"
	rec, err := spf.Parse(policy)
	if err != nil {
		panic(err)
	}
	fmt.Printf("parsed policy: %s\n", rec)
	fmt.Printf("DNS-consuming terms: %d of 10 allowed\n\n", rec.LookupTerms())

	// 2. Macro expansion (§2.2's examples for user@example.com).
	env := &spf.MacroEnv{
		Sender: "user@example.com",
		Domain: "example.com",
		IP:     netip.MustParseAddr("192.0.2.1"),
		HELO:   "mta.example.com",
	}
	for _, m := range []string{"%{l}", "%{d}", "%{d2}", "%{d1}", "%{dr}", "%{d1r}"} {
		out, _ := spf.Expander{}.Expand(context.Background(), m, env, false)
		fmt.Printf("  %-8s → %s\n", m, out)
	}

	// 3. The vulnerable libSPF2 expansion (§4.2): same macro, corrupted
	//    output — this is the remotely observable fingerprint.
	fmt.Println("\nexpansions of a:%{d1r}.foo.com by implementation:")
	for _, b := range []spfimpl.Behavior{
		spfimpl.BehaviorCompliant,
		spfimpl.BehaviorNoTruncate,
		spfimpl.BehaviorVulnLibSPF2,
	} {
		out, _ := spfimpl.ExpanderFor(b).Expand(context.Background(), "%{d1r}.foo.com", env, false)
		fmt.Printf("  %-20s → %s\n", b, out)
	}

	// 4. Full check_host() evaluation.
	resolver := &memResolver{
		txt: map[string][]string{
			"example.com": {policy},
			"bar.org":     {"v=spf1 ip4:198.51.100.0/24 -all"},
		},
		a: map[string][]netip.Addr{
			"foo.example.com": {netip.MustParseAddr("192.0.2.99")},
		},
	}
	checker := &spf.Checker{Resolver: resolver}
	fmt.Println("\ncheck_host() results:")
	for _, ip := range []string{"192.0.2.1", "192.0.2.99", "198.51.100.7", "203.0.113.5"} {
		res := checker.CheckHost(context.Background(),
			netip.MustParseAddr(ip), "example.com", "user@example.com", "mta.example.com")
		fmt.Printf("  %-14s → %-8s (matched %s)\n", ip, res.Result, res.Mechanism)
	}
}
