// Mailserver runs an SPF-validating SMTP server on a real localhost
// socket. Talk to it with netcat and watch it validate the MAIL FROM
// domain against its (embedded) DNS view:
//
//	go run ./examples/mailserver &
//	printf 'EHLO me\r\nMAIL FROM:<user@good.example>\r\nRCPT TO:<a@local>\r\nDATA\r\nhi\r\n.\r\nQUIT\r\n' | nc 127.0.0.1 2525
//
// good.example's policy passes for 127.0.0.1; bad.example's policy is
// -all, so mail claiming to be from it is rejected with 550.
package main

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"

	"spfail/internal/netsim"
	"spfail/internal/smtp"
	"spfail/internal/spf"
)

// staticResolver is the server's embedded DNS view.
type staticResolver struct {
	txt map[string][]string
	a   map[string][]netip.Addr
}

func (s *staticResolver) key(n string) string { return strings.ToLower(strings.TrimSuffix(n, ".")) }

func (s *staticResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if v, ok := s.txt[s.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (s *staticResolver) LookupIP(_ context.Context, _, name string) ([]netip.Addr, error) {
	if v, ok := s.a[s.key(name)]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (s *staticResolver) LookupMX(context.Context, string) ([]spf.MX, error) {
	return nil, spf.ErrNotFound
}

func (s *staticResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}

// spfHandler validates MAIL FROM with SPF and rejects on fail.
type spfHandler struct {
	smtp.NopHandler
	checker *spf.Checker
}

func (h *spfHandler) OnMailFrom(from string, remote net.Addr, helo string) *smtp.Reply {
	if from == "" {
		return nil
	}
	domain := smtp.AddressDomain(from)
	host, _, err := net.SplitHostPort(remote.String())
	if err != nil {
		host = remote.String()
	}
	ip, err := netip.ParseAddr(host)
	if err != nil {
		return nil
	}
	res := h.checker.CheckHost(context.Background(), ip, domain, from, helo)
	fmt.Printf("SPF %s for %s from %s (matched %s)\n", res.Result, from, ip, res.Mechanism)
	switch res.Result {
	case spf.ResultFail:
		return smtp.Replyf(550, "SPF fail for %s: %s", domain, res.Explanation)
	case spf.ResultTempError:
		return smtp.NewReply(451, "SPF temporary error, try again")
	}
	return nil
}

func main() {
	resolver := &staticResolver{
		txt: map[string][]string{
			"good.example":    {"v=spf1 ip4:127.0.0.0/8 ip6:::1 -all"},
			"bad.example":     {"v=spf1 -all exp=why.bad.example"},
			"why.bad.example": {"%{i} is not a permitted sender for %{d}"},
		},
		a: map[string][]netip.Addr{},
	}
	srv := &smtp.Server{
		Hostname: "mailserver.example",
		Net:      netsim.Real{},
		Addr:     "127.0.0.1:2525",
		Handler:  &spfHandler{checker: &spf.Checker{Resolver: resolver}},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := srv.Start(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mailserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("mailserver: SPF-validating SMTP on 127.0.0.1:2525 (ctrl-C to stop)")
	fmt.Println("  accepted sender domain: good.example   rejected: bad.example")
	<-ctx.Done()
	srv.Stop()
}
