// Zonefile demonstrates the DNS substrate on its own: parse an RFC 1035
// master file, serve it authoritatively over the in-memory fabric, and
// resolve against it with the stub resolver — including an SPF evaluation
// of a record defined in the zone.
package main

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"spfail/internal/dnsclient"
	"spfail/internal/dnsserver"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/spf"
)

const zoneText = `
$ORIGIN corp.example.
$TTL 300
@      IN SOA ns1 hostmaster 2026070500 7200 900 86400 60
@      IN NS  ns1
@      IN MX  10 mail
@      IN MX  20 backup
@      IN TXT "v=spf1 mx ip4:203.0.113.0/24 -all"
_dmarc IN TXT "v=DMARC1; p=quarantine"
ns1    IN A   192.0.2.53
mail   IN A   203.0.113.25
mail   IN AAAA 2001:db8::25
backup IN A   203.0.113.26
www    IN CNAME mail
`

func main() {
	zone, err := dnsserver.ParseZoneString(zoneText)
	if err != nil {
		panic(err)
	}

	fabric := netsim.NewFabric()
	srv := &dnsserver.Server{
		Net:     fabric.Host("192.0.2.53"),
		Addr:    ":53",
		Handler: zone,
	}
	if err := srv.Start(context.Background()); err != nil {
		panic(err)
	}
	defer srv.Stop()

	// Resolve through the real client code path (UDP wire format, TCP
	// fallback, error taxonomy).
	stub := dnsclient.NewResolver(&dnsclient.Client{
		Net:     fabric.Host("198.51.100.9"),
		Server:  "192.0.2.53:53",
		Timeout: 2 * time.Second,
	})
	resolver := mta.ResolverAdapter{R: stub}

	mxs, err := resolver.LookupMX(context.Background(), "corp.example")
	if err != nil {
		panic(err)
	}
	fmt.Println("MX records for corp.example:")
	for _, mx := range mxs {
		addrs, _ := resolver.LookupIP(context.Background(), "ip", mx.Host)
		fmt.Printf("  %2d %-22s → %v\n", mx.Preference, mx.Host, addrs)
	}

	txts, _ := resolver.LookupTXT(context.Background(), "corp.example")
	fmt.Println("TXT:", txts)

	// Evaluate the zone's SPF policy for two candidate senders.
	checker := &spf.Checker{Resolver: resolver}
	for _, ip := range []string{"203.0.113.25", "198.51.100.1"} {
		res := checker.CheckHost(context.Background(),
			netip.MustParseAddr(ip), "corp.example",
			"billing@corp.example", "mail.corp.example")
		fmt.Printf("SPF for sender at %-14s → %-8s (matched %s)\n", ip, res.Result, res.Mechanism)
	}
}
