// Detectvuln reproduces the paper's headline capability in one process: it
// stands up a mail server running the vulnerable libSPF2 (and a patched
// control), the measurement DNS zone, and then detects the vulnerability
// remotely with the benign NoMsg probe — no exploit, no crash, just a
// uniquely erroneous DNS query.
package main

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/dnsmsg"
	"spfail/internal/dnsserver"
	"spfail/internal/mta"
	"spfail/internal/netsim"
	"spfail/internal/spfimpl"
)

func main() {
	ctx := context.Background()
	fabric := netsim.NewFabric()

	// Measurement side: authoritative DNS for spf-test.dns-lab.org with
	// query logging.
	zone := &dnsserver.SPFTestZone{
		Base:  dnsmsg.MustParseName("spf-test.dns-lab.org"),
		Addr4: netip.MustParseAddr("192.0.2.80"),
	}
	collector := core.NewCollector(zone)
	dns := &dnsserver.Server{
		Net:  fabric.Host("192.0.2.53"),
		Addr: ":53",
		Handler: &dnsserver.LoggingHandler{
			Inner: zone, Sink: collector, Now: clock.Real{}.Now,
		},
	}
	if err := dns.Start(ctx); err != nil {
		panic(err)
	}
	defer dns.Stop()

	// Two mail servers: one vulnerable, one patched.
	hosts := map[string]spfimpl.Behavior{
		"203.0.113.25": spfimpl.BehaviorVulnLibSPF2,
		"203.0.113.26": spfimpl.BehaviorPatchedLibSPF2,
	}
	for ip, behavior := range hosts {
		h := mta.New(mta.Config{
			Hostname:   "mx." + ip,
			IP:         netip.MustParseAddr(ip),
			Net:        fabric.Host(ip),
			DNSServer:  "192.0.2.53:53",
			Behaviors:  []spfimpl.Behavior{behavior},
			ValidateAt: mta.ValidateAtMailFrom,
		})
		if err := h.Start(ctx); err != nil {
			panic(err)
		}
		defer h.Stop()
	}

	// The remote detector.
	prober := &core.Prober{
		Net:        fabric.Host("198.51.100.9"),
		HELO:       "probe.dns-lab.org",
		Clock:      clock.Real{},
		Zone:       zone,
		Labels:     core.NewLabelAllocator(1),
		Collector:  collector,
		Classifier: core.NewClassifier(zone),
		Suite:      "demo",
		IOTimeout:  5 * time.Second,
	}

	for ip := range hosts {
		out := prober.TestIP(ctx, ip+":25", "victim.example")
		fmt.Printf("== %s\n", ip)
		fmt.Printf("   probe method: %s, status: %s\n", out.Method, out.Status)
		for i, p := range out.Observation.Patterns {
			fmt.Printf("   observed expansion: %s\n     → classified %s\n", p, out.Observation.Classes[i])
		}
		if out.Vulnerable() {
			fmt.Printf("   VERDICT: VULNERABLE (CVE-2021-33912/33913)\n\n")
		} else {
			fmt.Printf("   VERDICT: not vulnerable (%s)\n\n", out.Observation.DominantClass())
		}
	}
}
