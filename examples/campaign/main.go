// Campaign runs a small-scale initial measurement over a generated
// population — the first stage of the paper's study — and prints the
// Table 3 outcome funnel plus the vulnerability breakdown it finds.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"spfail/internal/clock"
	"spfail/internal/core"
	"spfail/internal/measure"
	"spfail/internal/population"
	"spfail/internal/report"
)

func main() {
	spec := population.DefaultSpec()
	spec.Scale = 0.002
	spec.Seed = 42
	world, err := population.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("generated world: %s domains on %s mail-server addresses\n",
		report.Count(len(world.Domains)), report.Count(len(world.Hosts)))

	sim := clock.NewSim(population.TInitial)
	defer sim.Close()
	rig, err := measure.NewRigFromOptions(context.Background(), measure.RigOptions{
		World: world,
		Clock: sim,
	})
	if err != nil {
		panic(err)
	}
	defer rig.Close()

	// Discover targets through the DNS, exactly as the paper does.
	var names []string
	for _, d := range world.Domains {
		names = append(names, d.Name)
	}
	targets := rig.ResolveTargets(context.Background(), names)
	addrs, rep := measure.UniqueAddrs(targets)
	fmt.Printf("resolved %s distinct addresses via MX/A lookups\n\n", report.Count(len(addrs)))

	campaign, err := measure.NewCampaign(rig, measure.Config{
		Suite:       "ex01",
		Concurrency: 100,
		BatchSize:   500,
		IOTimeout:   5 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	done := make(chan map[string]int, 1)
	var outcomes map[string]int
	clock.Go(sim, func() {
		results, err := campaign.MeasureAddrs(context.Background(), addrs, rep)
		if err != nil {
			panic(err)
		}
		counts := map[string]int{}
		vulnerable := 0
		for _, o := range results {
			counts[string(o.Status)]++
			if o.Vulnerable() {
				vulnerable++
			}
		}
		counts["vulnerable"] = vulnerable
		done <- counts
	})
	outcomes = <-done

	t := &report.Table{
		Title:   "Initial measurement outcomes",
		Headers: []string{"Outcome", "Addresses", "Share"},
	}
	total := len(addrs)
	for _, row := range []string{
		string(core.StatusConnectionRefused),
		string(core.StatusSMTPFailure),
		string(core.StatusSPFMeasured),
		string(core.StatusSPFNotMeasured),
		"vulnerable",
	} {
		t.AddRow(row, report.Count(outcomes[row]), report.Percent(outcomes[row], total))
	}
	t.Render(newStdout())
}

type stdoutWriter struct{}

func newStdout() stdoutWriter { return stdoutWriter{} }

func (stdoutWriter) Write(p []byte) (int, error) { return fmt.Print(string(p)) }
