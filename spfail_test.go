package spfail

import (
	"context"
	"net/netip"
	"strings"
	"testing"

	"spfail/internal/spf"
)

// stubResolver backs the public-API tests.
type stubResolver struct {
	txt map[string][]string
}

func (s stubResolver) LookupTXT(_ context.Context, name string) ([]string, error) {
	if v, ok := s.txt[strings.TrimSuffix(name, ".")]; ok {
		return v, nil
	}
	return nil, spf.ErrNotFound
}

func (s stubResolver) LookupIP(context.Context, string, string) ([]netip.Addr, error) {
	return nil, spf.ErrNotFound
}

func (s stubResolver) LookupMX(context.Context, string) ([]MX, error) {
	return nil, spf.ErrNotFound
}

func (s stubResolver) LookupPTR(context.Context, netip.Addr) ([]string, error) {
	return nil, spf.ErrNotFound
}

// MX is re-exported through the spf package type used by Resolver.
type MX = spf.MX

func TestPublicParseRecord(t *testing.T) {
	rec, err := ParseRecord("v=spf1 ip4:192.0.2.0/24 -all")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Mechanisms) != 2 {
		t.Fatalf("mechanisms = %d", len(rec.Mechanisms))
	}
	if !IsSPFRecord("v=spf1 -all") || IsSPFRecord("not spf") {
		t.Error("IsSPFRecord")
	}
}

func TestPublicCheckHost(t *testing.T) {
	r := stubResolver{txt: map[string][]string{
		"example.com": {"v=spf1 ip4:192.0.2.0/24 -all"},
	}}
	res := CheckHost(context.Background(), r, netip.MustParseAddr("192.0.2.9"),
		"example.com", "user@example.com", "helo.example")
	if res.Result != ResultPass {
		t.Fatalf("result = %s", res.Result)
	}
	res = CheckHost(context.Background(), r, netip.MustParseAddr("198.51.100.1"),
		"example.com", "user@example.com", "helo.example")
	if res.Result != ResultFail {
		t.Fatalf("result = %s", res.Result)
	}
}

func TestPublicExpandMacros(t *testing.T) {
	env := &MacroEnv{Sender: "user@example.com", Domain: "example.com"}
	out, err := ExpandMacros(context.Background(), "%{d1r}.foo.com", env)
	if err != nil || out != "example.foo.com" {
		t.Fatalf("ExpandMacros = %q, %v", out, err)
	}
}

func TestPublicVulnerableChecker(t *testing.T) {
	r := stubResolver{txt: map[string][]string{
		"x.s.spf-test.dns-lab.org": {"v=spf1 a:%{d1r}.x.s.spf-test.dns-lab.org -all"},
	}}
	c := NewChecker(BehaviorVulnLibSPF2, r)
	res := c.CheckHost(context.Background(), netip.MustParseAddr("198.51.100.9"),
		"x.s.spf-test.dns-lab.org", "probe@x.s.spf-test.dns-lab.org", "probe")
	// The lookup of the fingerprint target NXDOMAINs, so -all fails the
	// check; what matters is that evaluation succeeded with the buggy
	// expander plugged in.
	if res.Result != ResultFail {
		t.Fatalf("result = %s (%v)", res.Result, res.Err)
	}
}

func TestPublicLibSPF2ExpanderFingerprint(t *testing.T) {
	exp := &LibSPF2Expander{}
	env := &MacroEnv{Sender: "user@example.com", Domain: "example.com"}
	out, err := exp.Expand(context.Background(), "%{d1r}.foo.com", env, false)
	if err != nil || out != "com.com.example.foo.com" {
		t.Fatalf("fingerprint = %q, %v", out, err)
	}
}

func TestPublicBehaviorClasses(t *testing.T) {
	if !ClassVulnerable.Erroneous() || ClassCompliant.Erroneous() {
		t.Error("class predicates")
	}
	if BehaviorVulnLibSPF2 == BehaviorCompliant {
		t.Error("behaviors must differ")
	}
}

func TestPublicDefaultPopulationSpec(t *testing.T) {
	spec := DefaultPopulationSpec()
	if spec.AlexaTopListSize != 418842 || spec.TwoWeekMXSize != 22911 {
		t.Errorf("paper sizes missing: %+v", spec)
	}
	if spec.NotificationBounceRate != 0.316 {
		t.Errorf("bounce rate = %v", spec.NotificationBounceRate)
	}
}
